//! Single-qubit unitary synthesis via Euler angles.
//!
//! Any 2×2 unitary factors as `U = e^{iα} · Rz(φ) · Ry(θ) · Rz(λ)` (ZYZ
//! decomposition). This module extracts the angles from a matrix and
//! re-emits the rotation in each platform's native one-qubit basis:
//!
//! * IBM / OQC `{Rz, √X}`: the ZSXZSXZ identity
//!   `U ≅ Rz(φ+π) · √X · Rz(θ+π) · √X · Rz(λ)`,
//! * Rigetti `{Rz, Rx}`: `Ry(θ) = Rx(π/2) · Rz(−θ) · Rx(−π/2)` inlined,
//! * IonQ `{Rz, Ry}`: the ZYZ form directly.

use qrc_circuit::math::CMatrix;
use qrc_circuit::{normalize_angle, Gate, ANGLE_TOL};
use std::f64::consts::{FRAC_PI_2, PI};

/// ZYZ Euler angles of a single-qubit unitary: `U = e^{iα} Rz(φ) Ry(θ) Rz(λ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZyzAngles {
    /// Polar rotation angle θ (of the middle `Ry`), in `[0, π]`.
    pub theta: f64,
    /// Leading `Rz` angle φ.
    pub phi: f64,
    /// Trailing `Rz` angle λ.
    pub lambda: f64,
    /// Global phase α.
    pub alpha: f64,
}

/// Extracts ZYZ Euler angles from a 2×2 unitary.
///
/// # Panics
///
/// Panics if `u` is not 2×2 (callers always pass gate-sized matrices).
pub fn zyz_angles(u: &CMatrix) -> ZyzAngles {
    assert_eq!(u.dim(), 2, "zyz_angles needs a single-qubit matrix");
    // Normalize to SU(2): det(V) = 1.
    let det = u.det();
    let alpha0 = det.arg() / 2.0;
    let inv_phase = qrc_circuit::math::Complex::cis(-alpha0);
    let v00 = u[(0, 0)] * inv_phase;
    let v10 = u[(1, 0)] * inv_phase;
    let v11 = u[(1, 1)] * inv_phase;

    // V = [[cos(θ/2)·e^{-i(φ+λ)/2}, -sin(θ/2)·e^{-i(φ-λ)/2}],
    //      [sin(θ/2)·e^{ i(φ-λ)/2},  cos(θ/2)·e^{ i(φ+λ)/2}]]
    let theta = 2.0 * v10.abs().atan2(v00.abs());
    let (phi, lambda) = if theta.abs() < 1e-12 {
        // Diagonal: only φ+λ defined; put everything in λ.
        (0.0, 2.0 * v11.arg())
    } else if (theta - PI).abs() < 1e-12 {
        // Anti-diagonal: only φ−λ defined.
        (2.0 * v10.arg(), 0.0)
    } else {
        let sum = 2.0 * v11.arg(); // φ+λ
        let diff = 2.0 * v10.arg(); // φ−λ
        ((sum + diff) / 2.0, (sum - diff) / 2.0)
    };
    let phi = normalize_angle(phi);
    let lambda = normalize_angle(lambda);
    // Angle normalization can flip the SU(2) sign (2π shifts); recover the
    // exact global phase from the rebuilt matrix rather than trusting α₀.
    let rebuilt = Gate::Rz(phi)
        .matrix()
        .matmul(&Gate::Ry(theta).matrix())
        .matmul(&Gate::Rz(lambda).matrix());
    let (mut best, mut best_mag) = (0usize, 0.0f64);
    for (i, v) in rebuilt.as_slice().iter().enumerate() {
        if v.abs() > best_mag {
            best_mag = v.abs();
            best = i;
        }
    }
    let (r, c) = (best / 2, best % 2);
    let alpha = (u[(r, c)] / rebuilt[(r, c)]).arg();
    let _ = alpha0;
    ZyzAngles {
        theta,
        phi,
        lambda,
        alpha,
    }
}

/// The single-qubit target bases supported by the synthesizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OneQubitBasis {
    /// `{Rz, √X}` — IBM and OQC.
    ZsxBasis,
    /// `{Rz, Rx}` — Rigetti.
    ZxBasis,
    /// `{Rz, Ry}` — IonQ (ZYZ emitted directly).
    ZyBasis,
    /// A single `U(θ, φ, λ)` gate (device-independent canonical form).
    UGate,
}

/// Synthesizes the gate sequence (in circuit order) realizing `u` up to
/// global phase in the chosen basis, dropping near-identity rotations.
///
/// The returned sequence is at most 5 gates (3 rotations + 2 fixed) and
/// empty when `u` is the identity.
pub fn synthesize_1q(u: &CMatrix, basis: OneQubitBasis) -> Vec<Gate> {
    let angles = zyz_angles(u);
    synthesize_1q_from_angles(angles, basis)
}

/// Like [`synthesize_1q`] but from precomputed angles.
pub fn synthesize_1q_from_angles(angles: ZyzAngles, basis: OneQubitBasis) -> Vec<Gate> {
    let ZyzAngles {
        theta, phi, lambda, ..
    } = angles;
    let near = |x: f64, y: f64| normalize_angle(x - y).abs() < ANGLE_TOL;
    let mut out = Vec::new();
    match basis {
        OneQubitBasis::UGate => {
            if !(near(theta, 0.0) && near(phi + lambda, 0.0)) {
                out.push(Gate::U(theta, phi, lambda));
            }
        }
        OneQubitBasis::ZyBasis => {
            // Circuit order: Rz(λ), Ry(θ), Rz(φ).
            if theta.abs() < ANGLE_TOL {
                // Diagonal — merge into one Rz.
                push_rz(&mut out, phi + lambda);
            } else {
                push_rz(&mut out, lambda);
                out.push(Gate::Ry(theta));
                push_rz(&mut out, phi);
            }
        }
        OneQubitBasis::ZxBasis => {
            // Ry(θ) = Rx(π/2) · Rz(−θ) · Rx(−π/2)  (matrix order), so in
            // circuit order: Rx(−π/2), Rz(−θ), Rx(π/2).
            if theta.abs() < ANGLE_TOL {
                push_rz(&mut out, phi + lambda);
            } else {
                push_rz(&mut out, lambda);
                out.push(Gate::Rx(-FRAC_PI_2));
                push_rz(&mut out, -theta);
                out.push(Gate::Rx(FRAC_PI_2));
                push_rz(&mut out, phi);
            }
        }
        OneQubitBasis::ZsxBasis => {
            // U(θ,φ,λ) ≅ Rz(φ+π) · √X · Rz(θ+π) · √X · Rz(λ)  (matrix
            // order). Special cases avoid unnecessary √X gates:
            //  θ ≈ 0   → single Rz(φ+λ)
            //  θ ≈ π/2 → Rz(φ+π/2) · √X · Rz(λ+π/2)? (one √X)
            if near(theta, 0.0) {
                push_rz(&mut out, phi + lambda);
            } else if near(theta, FRAC_PI_2) {
                // Circuit order: Rz(λ − π/2), SX, Rz(φ + π/2).
                push_rz(&mut out, lambda - FRAC_PI_2);
                out.push(Gate::Sx);
                push_rz(&mut out, phi + FRAC_PI_2);
            } else {
                // Circuit order: Rz(λ), SX, Rz(θ+π), SX, Rz(φ+π).
                push_rz(&mut out, lambda);
                out.push(Gate::Sx);
                push_rz(&mut out, theta + PI);
                out.push(Gate::Sx);
                push_rz(&mut out, phi + PI);
            }
        }
    }
    out
}

fn push_rz(out: &mut Vec<Gate>, angle: f64) {
    let a = normalize_angle(angle);
    if a.abs() >= ANGLE_TOL {
        out.push(Gate::Rz(a));
    }
}

/// Multiplies the matrices of a gate sequence given in circuit order
/// (i.e. returns `g_n · … · g_2 · g_1`). All gates must be single-qubit.
pub fn sequence_matrix(gates: &[Gate]) -> CMatrix {
    let mut m = CMatrix::identity(2);
    for g in gates {
        debug_assert_eq!(g.num_qubits(), 1);
        m = g.matrix().matmul(&m);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrc_circuit::math::Complex;

    fn assert_synthesis_ok(u: &CMatrix, basis: OneQubitBasis) {
        let gates = synthesize_1q(u, basis);
        let m = sequence_matrix(&gates);
        assert!(
            m.approx_eq_up_to_phase(u, 1e-9),
            "basis {basis:?}: synthesized {gates:?} does not match"
        );
        assert!(gates.len() <= 5, "too many gates: {gates:?}");
    }

    fn test_gates() -> Vec<Gate> {
        vec![
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Sx,
            Gate::Rx(0.3),
            Gate::Ry(-1.1),
            Gate::Rz(2.7),
            Gate::P(0.4),
            Gate::U(0.7, -0.2, 1.9),
            Gate::U(PI, 0.0, PI),
            Gate::U(FRAC_PI_2, 1.0, -2.0),
        ]
    }

    #[test]
    fn zyz_reconstructs_the_matrix() {
        for g in test_gates() {
            let u = g.matrix();
            let a = zyz_angles(&u);
            let rebuilt = Gate::Rz(a.phi)
                .matrix()
                .matmul(&Gate::Ry(a.theta).matrix())
                .matmul(&Gate::Rz(a.lambda).matrix())
                .scale(Complex::cis(a.alpha));
            assert!(rebuilt.approx_eq(&u, 1e-9), "{g:?}: {a:?}");
        }
    }

    #[test]
    fn zyz_theta_in_range() {
        for g in test_gates() {
            let a = zyz_angles(&g.matrix());
            assert!((0.0..=PI + 1e-12).contains(&a.theta), "{g:?}");
        }
    }

    #[test]
    fn synthesis_matches_in_all_bases() {
        for g in test_gates() {
            for basis in [
                OneQubitBasis::UGate,
                OneQubitBasis::ZyBasis,
                OneQubitBasis::ZxBasis,
                OneQubitBasis::ZsxBasis,
            ] {
                assert_synthesis_ok(&g.matrix(), basis);
            }
        }
    }

    #[test]
    fn identity_synthesizes_to_nothing() {
        for basis in [
            OneQubitBasis::UGate,
            OneQubitBasis::ZyBasis,
            OneQubitBasis::ZxBasis,
            OneQubitBasis::ZsxBasis,
        ] {
            let gates = synthesize_1q(&CMatrix::identity(2), basis);
            assert!(gates.is_empty(), "{basis:?} produced {gates:?}");
            // Global-phase-only matrices too.
            let phased = CMatrix::identity(2).scale(Complex::cis(1.23));
            let gates = synthesize_1q(&phased, basis);
            assert!(gates.is_empty(), "{basis:?} produced {gates:?}");
        }
    }

    #[test]
    fn diagonal_gates_need_one_rz() {
        let gates = synthesize_1q(&Gate::T.matrix(), OneQubitBasis::ZsxBasis);
        assert_eq!(gates.len(), 1);
        assert!(matches!(gates[0], Gate::Rz(_)));
    }

    #[test]
    fn sx_like_gates_use_single_sx() {
        // H has θ = π/2, so the ZSX basis should use only one √X.
        let gates = synthesize_1q(&Gate::H.matrix(), OneQubitBasis::ZsxBasis);
        let sx_count = gates.iter().filter(|g| **g == Gate::Sx).count();
        assert_eq!(sx_count, 1, "H should need exactly one √X: {gates:?}");
    }

    #[test]
    fn basis_outputs_use_only_basis_gates() {
        for g in test_gates() {
            for (basis, pred) in [
                (
                    OneQubitBasis::ZsxBasis,
                    (|g: &Gate| matches!(g, Gate::Rz(_) | Gate::Sx)) as fn(&Gate) -> bool,
                ),
                (OneQubitBasis::ZxBasis, |g: &Gate| {
                    matches!(g, Gate::Rz(_) | Gate::Rx(_))
                }),
                (OneQubitBasis::ZyBasis, |g: &Gate| {
                    matches!(g, Gate::Rz(_) | Gate::Ry(_))
                }),
            ] {
                let gates = synthesize_1q(&g.matrix(), basis);
                assert!(
                    gates.iter().all(pred),
                    "{g:?} in {basis:?} produced {gates:?}"
                );
            }
        }
    }
}
