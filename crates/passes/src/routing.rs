//! Routing passes: make every two-qubit gate act on coupled qubits.
//!
//! Four algorithms, mirroring the paper's action set:
//!
//! * [`BasicSwap`] — Qiskit's `BasicSwap`: walk each distant pair along a
//!   shortest path, swapping greedily,
//! * [`StochasticSwap`] — Qiskit's `StochasticSwap`: randomized trials per
//!   blocked layer, keep the cheapest,
//! * [`SabreSwap`] — Li/Ding/Xie SABRE heuristic with lookahead and decay,
//! * [`TketRouting`] — TKET-style router that additionally uses BRIDGE
//!   templates for distance-2 CNOTs.
//!
//! All routers take a circuit whose wire labels are *physical* positions at
//! time zero (i.e. a layout has been applied) and return a circuit plus the
//! final wire permutation ([`WireEffect::Permute`]).

use crate::pass::{Pass, PassContext, PassError, PassOutcome, WireEffect};
use crate::synthesis::lower_to_canonical;
use qrc_circuit::{Gate, Operation, QuantumCircuit, Qubit};
use qrc_device::{CouplingMap, Device};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tracks virtual-wire positions while swaps are inserted.
#[derive(Debug, Clone)]
struct WireTracker {
    virt2phys: Vec<u32>,
    phys2virt: Vec<u32>,
}

impl WireTracker {
    fn identity(n: u32) -> Self {
        WireTracker {
            virt2phys: (0..n).collect(),
            phys2virt: (0..n).collect(),
        }
    }

    fn pos(&self, v: u32) -> u32 {
        self.virt2phys[v as usize]
    }

    /// Swaps the contents of two physical qubits.
    fn swap_phys(&mut self, p1: u32, p2: u32) {
        let v1 = self.phys2virt[p1 as usize];
        let v2 = self.phys2virt[p2 as usize];
        self.phys2virt[p1 as usize] = v2;
        self.phys2virt[p2 as usize] = v1;
        self.virt2phys[v1 as usize] = p2;
        self.virt2phys[v2 as usize] = p1;
    }
}

/// Per-wire queues driving dependency-respecting op scheduling.
#[derive(Debug)]
struct OpScheduler<'c> {
    circuit: &'c QuantumCircuit,
    /// Next pending op index per wire queue position.
    wire_queues: Vec<std::collections::VecDeque<usize>>,
    /// Ready ops (all wire predecessors done), in deterministic order.
    ready: Vec<usize>,
    remaining: usize,
}

impl<'c> OpScheduler<'c> {
    fn new(circuit: &'c QuantumCircuit) -> Self {
        let n = circuit.num_qubits() as usize;
        let mut wire_queues = vec![std::collections::VecDeque::new(); n];
        for (i, op) in circuit.iter().enumerate() {
            for q in op.qubits.iter() {
                wire_queues[q.index()].push_back(i);
            }
        }
        // An op is ready when it heads every one of its wire queues.
        let mut sched = OpScheduler {
            circuit,
            wire_queues,
            ready: Vec::new(),
            remaining: circuit.len(),
        };
        sched.recompute_ready();
        sched
    }

    fn recompute_ready(&mut self) {
        self.ready.clear();
        let mut seen = std::collections::BTreeSet::new();
        for queue in &self.wire_queues {
            if let Some(&i) = queue.front() {
                if self.is_head_everywhere(i) && seen.insert(i) {
                    self.ready.push(i);
                }
            }
        }
        self.ready.sort_unstable();
    }

    fn is_head_everywhere(&self, i: usize) -> bool {
        self.circuit.ops()[i]
            .qubits
            .iter()
            .all(|q| self.wire_queues[q.index()].front() == Some(&i))
    }

    /// Marks op `i` executed and updates the ready set.
    fn complete(&mut self, i: usize) {
        for q in self.circuit.ops()[i].qubits.iter() {
            let queue = &mut self.wire_queues[q.index()];
            debug_assert_eq!(queue.front(), Some(&i));
            queue.pop_front();
        }
        self.remaining -= 1;
        self.recompute_ready();
    }

    fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// Ready two-qubit unitary ops that are NOT executable at current
    /// positions.
    fn blocked_2q(&self, tracker: &WireTracker, coupling: &CouplingMap) -> Vec<usize> {
        self.ready
            .iter()
            .copied()
            .filter(|&i| {
                let op = &self.circuit.ops()[i];
                op.is_two_qubit()
                    && !coupling
                        .are_connected(tracker.pos(op.qubits[0].0), tracker.pos(op.qubits[1].0))
            })
            .collect()
    }
}

/// Prepares a circuit for routing: widen to device width and lower any
/// ≥ 3-qubit gate (routing operates on 1q/2q gates only).
fn prepare_for_routing(
    circuit: &QuantumCircuit,
    device: &Device,
) -> Result<QuantumCircuit, PassError> {
    if circuit.num_qubits() > device.num_qubits() {
        return Err(PassError::CircuitTooWide {
            circuit: circuit.num_qubits(),
            device: device.num_qubits(),
        });
    }
    let needs_lowering = circuit
        .iter()
        .any(|op| op.gate.is_unitary() && op.gate.num_qubits() > 2);
    let narrowed = if needs_lowering {
        lower_to_canonical(circuit, Some(device.platform()))?
    } else {
        circuit.clone()
    };
    if narrowed.num_qubits() == device.num_qubits() {
        return Ok(narrowed);
    }
    let map: Vec<Qubit> = (0..narrowed.num_qubits()).map(Qubit).collect();
    Ok(narrowed.remapped(device.num_qubits(), &map)?)
}

/// Emits `op` at its current physical position.
fn emit_mapped(
    op: &Operation,
    tracker: &WireTracker,
    out: &mut QuantumCircuit,
) -> Result<(), PassError> {
    let qs: Vec<Qubit> = op.qubits.iter().map(|q| Qubit(tracker.pos(q.0))).collect();
    out.push(Operation::new(op.gate, &qs))?;
    Ok(())
}

fn emit_swap(p1: u32, p2: u32, tracker: &mut WireTracker, out: &mut QuantumCircuit) {
    out.push(Operation::new(Gate::Swap, &[Qubit(p1), Qubit(p2)]))
        .expect("physical indices in range");
    tracker.swap_phys(p1, p2);
}

/// Shared driver: repeatedly execute ready ops; when the front is blocked,
/// ask `strategy` to mutate state (insert swaps/bridges) until progress.
fn route_with<S>(
    circuit: &QuantumCircuit,
    device: &Device,
    mut strategy: S,
) -> Result<(QuantumCircuit, Vec<u32>), PassError>
where
    S: FnMut(
        &OpScheduler<'_>,
        &mut WireTracker,
        &mut QuantumCircuit,
        &CouplingMap,
    ) -> Result<StrategyAction, PassError>,
{
    let prepared = prepare_for_routing(circuit, device)?;
    let coupling = device.coupling();
    let mut tracker = WireTracker::identity(prepared.num_qubits());
    let mut out = QuantumCircuit::with_name(prepared.num_qubits(), prepared.name().to_string());
    let mut sched = OpScheduler::new(&prepared);

    let mut stall_guard = 0usize;
    let stall_limit = 10_000 + 100 * prepared.len();
    while !sched.is_done() {
        // Execute everything executable.
        let executable: Vec<usize> = sched
            .ready
            .iter()
            .copied()
            .filter(|&i| {
                let op = &prepared.ops()[i];
                !op.is_two_qubit()
                    || coupling
                        .are_connected(tracker.pos(op.qubits[0].0), tracker.pos(op.qubits[1].0))
            })
            .collect();
        if !executable.is_empty() {
            for i in executable {
                emit_mapped(&prepared.ops()[i], &tracker, &mut out)?;
                sched.complete(i);
            }
            continue;
        }
        // Blocked: let the strategy act.
        match strategy(&sched, &mut tracker, &mut out, coupling)? {
            StrategyAction::Continue => {}
            StrategyAction::ExecuteWithBridge(i) => {
                // The strategy already emitted the bridge realization.
                sched.complete(i);
            }
        }
        stall_guard += 1;
        if stall_guard > stall_limit {
            return Err(PassError::SynthesisFailed {
                pass: "routing",
                reason: "router failed to make progress".into(),
            });
        }
    }
    Ok((out, tracker.virt2phys.clone()))
}

/// What a routing strategy did in one blocked step.
enum StrategyAction {
    /// State was mutated (e.g. a swap inserted); retry execution.
    Continue,
    /// Ready op `i` was realized in place (bridge); mark it complete.
    ExecuteWithBridge(usize),
}

// ---------------------------------------------------------------------
// BasicSwap
// ---------------------------------------------------------------------

/// Qiskit-style `BasicSwap`: move the first qubit of each blocked pair
/// along a shortest path until adjacent.
#[derive(Debug, Clone, Copy, Default)]
pub struct BasicSwap;

impl Pass for BasicSwap {
    fn name(&self) -> &'static str {
        "BasicSwap"
    }

    fn apply(
        &self,
        circuit: &QuantumCircuit,
        ctx: &PassContext<'_>,
    ) -> Result<PassOutcome, PassError> {
        let device = ctx.require_device(self.name())?;
        let (routed, perm) = route_with(circuit, device, |sched, tracker, out, coupling| {
            let blocked = sched.blocked_2q(tracker, coupling);
            let &first = blocked.first().ok_or(PassError::SynthesisFailed {
                pass: "BasicSwap",
                reason: "blocked without blocked 2q op".into(),
            })?;
            let op = &sched.circuit.ops()[first];
            let (pa, pb) = (tracker.pos(op.qubits[0].0), tracker.pos(op.qubits[1].0));
            let path =
                coupling
                    .shortest_path(pa, pb)
                    .ok_or_else(|| PassError::SynthesisFailed {
                        pass: "BasicSwap",
                        reason: format!("no path between {pa} and {pb}"),
                    })?;
            // Swap along the path until the pair is adjacent.
            for w in path.windows(2).take(path.len().saturating_sub(2)) {
                emit_swap(w[0], w[1], tracker, out);
            }
            Ok(StrategyAction::Continue)
        })?;
        Ok(PassOutcome {
            circuit: routed,
            effect: WireEffect::Permute(perm),
        })
    }
}

// ---------------------------------------------------------------------
// StochasticSwap
// ---------------------------------------------------------------------

/// Qiskit-style `StochasticSwap`: try several randomized swap sequences for
/// each blocked front and keep the shortest one.
#[derive(Debug, Clone, Copy)]
pub struct StochasticSwap {
    /// Number of randomized trials per blocked front (Qiskit default: 20).
    pub trials: usize,
}

impl Default for StochasticSwap {
    fn default() -> Self {
        StochasticSwap { trials: 20 }
    }
}

impl Pass for StochasticSwap {
    fn name(&self) -> &'static str {
        "StochasticSwap"
    }

    fn apply(
        &self,
        circuit: &QuantumCircuit,
        ctx: &PassContext<'_>,
    ) -> Result<PassOutcome, PassError> {
        let device = ctx.require_device(self.name())?;
        let mut rng = StdRng::seed_from_u64(ctx.seed);
        let trials = self.trials.max(1);
        let (routed, perm) = route_with(circuit, device, move |sched, tracker, out, coupling| {
            let blocked = sched.blocked_2q(tracker, coupling);
            if blocked.is_empty() {
                return Err(PassError::SynthesisFailed {
                    pass: "StochasticSwap",
                    reason: "blocked without blocked 2q op".into(),
                });
            }
            // Target pairs to make adjacent (virtual indices).
            let pairs: Vec<(u32, u32)> = blocked
                .iter()
                .map(|&i| {
                    let op = &sched.circuit.ops()[i];
                    (op.qubits[0].0, op.qubits[1].0)
                })
                .collect();
            let dist_sum = |t: &WireTracker| -> u64 {
                pairs
                    .iter()
                    .map(|&(a, b)| coupling.distance(t.pos(a), t.pos(b)) as u64)
                    .sum()
            };
            let edges: Vec<(u32, u32)> = coupling.edges().collect();
            let mut best: Option<Vec<(u32, u32)>> = None;
            for _ in 0..trials {
                let mut t = tracker.clone();
                let mut seq = Vec::new();
                let cap = 4 * coupling.num_qubits() as usize + 16;
                while dist_sum(&t) > pairs.len() as u64 && seq.len() < cap {
                    // Prefer improving swaps; pick randomly among them.
                    let current = dist_sum(&t);
                    let improving: Vec<&(u32, u32)> = edges
                        .iter()
                        .filter(|&&(p1, p2)| {
                            let mut probe = t.clone();
                            probe.swap_phys(p1, p2);
                            dist_sum(&probe) < current
                        })
                        .collect();
                    let &(p1, p2) = if improving.is_empty() {
                        // Random restart move to escape plateaus.
                        &edges[rng.gen_range(0..edges.len())]
                    } else {
                        improving[rng.gen_range(0..improving.len())]
                    };
                    t.swap_phys(p1, p2);
                    seq.push((p1, p2));
                }
                if dist_sum(&t) == pairs.len() as u64
                    && best.as_ref().is_none_or(|b| seq.len() < b.len())
                {
                    best = Some(seq);
                }
            }
            let seq = best.ok_or(PassError::SynthesisFailed {
                pass: "StochasticSwap",
                reason: "no trial reached an executable front".into(),
            })?;
            for (p1, p2) in seq {
                emit_swap(p1, p2, tracker, out);
            }
            Ok(StrategyAction::Continue)
        })?;
        Ok(PassOutcome {
            circuit: routed,
            effect: WireEffect::Permute(perm),
        })
    }
}

// ---------------------------------------------------------------------
// SabreSwap
// ---------------------------------------------------------------------

/// SABRE routing (Li, Ding, Xie — ASPLOS 2019): heuristic swap selection
/// with an extended lookahead set and a decay penalty against ping-ponging.
#[derive(Debug, Clone, Copy)]
pub struct SabreSwap {
    /// Weight of the lookahead term (0.5 in the paper).
    pub extended_set_weight: f64,
    /// Size of the lookahead window.
    pub extended_set_size: usize,
}

impl Default for SabreSwap {
    fn default() -> Self {
        SabreSwap {
            extended_set_weight: 0.5,
            extended_set_size: 20,
        }
    }
}

impl Pass for SabreSwap {
    fn name(&self) -> &'static str {
        "SabreSwap"
    }

    fn apply(
        &self,
        circuit: &QuantumCircuit,
        ctx: &PassContext<'_>,
    ) -> Result<PassOutcome, PassError> {
        let device = ctx.require_device(self.name())?;
        let (routed, perm) = sabre_route(circuit, device, *self, ctx.seed)?;
        Ok(PassOutcome {
            circuit: routed,
            effect: WireEffect::Permute(perm),
        })
    }
}

/// Core SABRE routing, reusable by `SabreLayout`.
pub(crate) fn sabre_route(
    circuit: &QuantumCircuit,
    device: &Device,
    params: SabreSwap,
    seed: u64,
) -> Result<(QuantumCircuit, Vec<u32>), PassError> {
    let mut decay: Vec<f64> = vec![1.0; device.num_qubits() as usize];
    let mut rounds_since_progress = 0usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5a5a_5a5a);
    route_with(circuit, device, move |sched, tracker, out, coupling| {
        let blocked = sched.blocked_2q(tracker, coupling);
        if blocked.is_empty() {
            return Err(PassError::SynthesisFailed {
                pass: "SabreSwap",
                reason: "blocked without blocked 2q op".into(),
            });
        }
        // Extended set: the next few 2q ops behind the front on each wire.
        let extended = lookahead_2q(sched, &blocked, params.extended_set_size);
        // Candidate swaps: edges touching a qubit of a blocked front op.
        let mut front_phys = std::collections::BTreeSet::new();
        for &i in &blocked {
            for q in sched.circuit.ops()[i].qubits.iter() {
                front_phys.insert(tracker.pos(q.0));
            }
        }
        let candidates: Vec<(u32, u32)> = coupling
            .edges()
            .filter(|&(p1, p2)| front_phys.contains(&p1) || front_phys.contains(&p2))
            .collect();
        let score = |t: &WireTracker, p1: u32, p2: u32| -> f64 {
            let front: f64 = blocked
                .iter()
                .map(|&i| {
                    let op = &sched.circuit.ops()[i];
                    coupling.distance(t.pos(op.qubits[0].0), t.pos(op.qubits[1].0)) as f64
                })
                .sum::<f64>()
                / blocked.len() as f64;
            let look: f64 = if extended.is_empty() {
                0.0
            } else {
                extended
                    .iter()
                    .map(|&i| {
                        let op = &sched.circuit.ops()[i];
                        coupling.distance(t.pos(op.qubits[0].0), t.pos(op.qubits[1].0)) as f64
                    })
                    .sum::<f64>()
                    / extended.len() as f64
            };
            decay[p1 as usize].max(decay[p2 as usize]) * (front + params.extended_set_weight * look)
        };
        let mut best: Option<((u32, u32), f64)> = None;
        for &(p1, p2) in &candidates {
            let mut probe = tracker.clone();
            probe.swap_phys(p1, p2);
            let s = score(&probe, p1, p2);
            match best {
                Some((_, bs)) if bs <= s => {}
                _ => best = Some(((p1, p2), s)),
            }
        }
        let ((p1, p2), _) = best.ok_or(PassError::SynthesisFailed {
            pass: "SabreSwap",
            reason: "no candidate swaps".into(),
        })?;
        emit_swap(p1, p2, tracker, out);
        decay[p1 as usize] += 0.001;
        decay[p2 as usize] += 0.001;
        rounds_since_progress += 1;
        if rounds_since_progress > 16 {
            // Reset decay; nudge with a random improving swap if available.
            decay.iter_mut().for_each(|d| *d = 1.0);
            rounds_since_progress = 0;
            let _ = rng.gen::<u64>();
        }
        Ok(StrategyAction::Continue)
    })
}

/// The next up-to-`limit` two-qubit ops that become ready after the front.
fn lookahead_2q(sched: &OpScheduler<'_>, front: &[usize], limit: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let front_set: std::collections::BTreeSet<usize> = front.iter().copied().collect();
    for queue in &sched.wire_queues {
        for (depth, &i) in queue.iter().enumerate() {
            if depth == 0 || depth > 3 {
                if depth > 3 {
                    break;
                }
                continue;
            }
            if sched.circuit.ops()[i].is_two_qubit() && !front_set.contains(&i) && !out.contains(&i)
            {
                out.push(i);
                if out.len() >= limit {
                    return out;
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// TketRouting
// ---------------------------------------------------------------------

/// TKET-style router: SABRE-like swap scoring plus BRIDGE templates for
/// distance-2 CNOTs (realizing a remote CX without changing the layout).
#[derive(Debug, Clone, Copy)]
pub struct TketRouting {
    /// Lookahead window size for swap scoring.
    pub lookahead: usize,
}

impl Default for TketRouting {
    fn default() -> Self {
        TketRouting { lookahead: 10 }
    }
}

impl Pass for TketRouting {
    fn name(&self) -> &'static str {
        "TketRouting"
    }

    fn apply(
        &self,
        circuit: &QuantumCircuit,
        ctx: &PassContext<'_>,
    ) -> Result<PassOutcome, PassError> {
        let device = ctx.require_device(self.name())?;
        let lookahead = self.lookahead;
        let (routed, perm) = route_with(circuit, device, move |sched, tracker, out, coupling| {
            let blocked = sched.blocked_2q(tracker, coupling);
            let &first = blocked.first().ok_or(PassError::SynthesisFailed {
                pass: "TketRouting",
                reason: "blocked without blocked 2q op".into(),
            })?;
            let op = &sched.circuit.ops()[first];
            let (pa, pb) = (tracker.pos(op.qubits[0].0), tracker.pos(op.qubits[1].0));
            // BRIDGE: a CX at distance exactly 2 can run in place with
            // 4 CX through the middle qubit.
            if op.gate == Gate::Cx && coupling.distance(pa, pb) == 2 {
                let path = coupling.shortest_path(pa, pb).expect("distance 2 path");
                let mid = path[1];
                for (c, t) in [(pa, mid), (mid, pb), (pa, mid), (mid, pb)] {
                    out.push(Operation::new(Gate::Cx, &[Qubit(c), Qubit(t)]))?;
                }
                return Ok(StrategyAction::ExecuteWithBridge(first));
            }
            // Otherwise choose the swap minimizing front + lookahead
            // distance, among edges touching the blocked front.
            let extended = lookahead_2q(sched, &blocked, lookahead);
            let mut front_phys = std::collections::BTreeSet::new();
            for &i in &blocked {
                for q in sched.circuit.ops()[i].qubits.iter() {
                    front_phys.insert(tracker.pos(q.0));
                }
            }
            let mut best: Option<((u32, u32), f64)> = None;
            for (p1, p2) in coupling.edges() {
                if !(front_phys.contains(&p1) || front_phys.contains(&p2)) {
                    continue;
                }
                let mut probe = tracker.clone();
                probe.swap_phys(p1, p2);
                let mut s = 0.0;
                for &i in &blocked {
                    let o = &sched.circuit.ops()[i];
                    s += coupling.distance(probe.pos(o.qubits[0].0), probe.pos(o.qubits[1].0))
                        as f64;
                }
                for (rank, &i) in extended.iter().enumerate() {
                    let o = &sched.circuit.ops()[i];
                    let w = 0.5 / (1.0 + rank as f64);
                    s += w * coupling.distance(probe.pos(o.qubits[0].0), probe.pos(o.qubits[1].0))
                        as f64;
                }
                match best {
                    Some((_, bs)) if bs <= s => {}
                    _ => best = Some(((p1, p2), s)),
                }
            }
            let ((p1, p2), _) = best.ok_or(PassError::SynthesisFailed {
                pass: "TketRouting",
                reason: "no candidate swaps".into(),
            })?;
            emit_swap(p1, p2, tracker, out);
            Ok(StrategyAction::Continue)
        })?;
        Ok(PassOutcome {
            circuit: routed,
            effect: WireEffect::Permute(perm),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrc_device::DeviceId;
    use qrc_sim::equiv::mapped_circuit_equivalent;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_routers() -> Vec<Box<dyn Pass>> {
        vec![
            Box::new(BasicSwap),
            Box::new(StochasticSwap::default()),
            Box::new(SabreSwap::default()),
            Box::new(TketRouting::default()),
        ]
    }

    /// A circuit needing routing on a ring: long-range CX pairs.
    fn hard_circuit(n: u32) -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(n);
        qc.h(0);
        for i in 0..n {
            for j in (i + 1)..n {
                if (i + j) % 3 == 0 {
                    qc.cx(i, j);
                }
            }
        }
        qc.rz(0.3, 0);
        qc.measure_all();
        qc
    }

    #[test]
    fn routed_circuits_respect_coupling() {
        let dev = Device::get(DeviceId::OqcLucy);
        let qc = hard_circuit(8);
        for router in all_routers() {
            let out = router
                .apply(&qc, &PassContext::for_device(&dev))
                .unwrap_or_else(|e| panic!("{}: {e}", router.name()));
            assert!(
                dev.check_connectivity(&out.circuit),
                "{} left uncoupled gates",
                router.name()
            );
            assert!(matches!(out.effect, WireEffect::Permute(_)));
        }
    }

    #[test]
    fn routed_circuits_are_semantically_correct() {
        let dev = Device::get(DeviceId::OqcLucy);
        let mut qc = QuantumCircuit::new(5);
        qc.h(0).cx(0, 3).t(3).cx(1, 4).cx(0, 4).rz(0.7, 2).cx(2, 0);
        for router in all_routers() {
            let out = router.apply(&qc, &PassContext::for_device(&dev)).unwrap();
            let WireEffect::Permute(perm) = &out.effect else {
                panic!("{} must permute", router.name());
            };
            let initial: Vec<Qubit> = (0..qc.num_qubits()).map(Qubit).collect();
            let final_: Vec<Qubit> = (0..qc.num_qubits())
                .map(|v| Qubit(perm[v as usize]))
                .collect();
            let mut rng = StdRng::seed_from_u64(3);
            assert!(
                mapped_circuit_equivalent(&qc, &out.circuit, &initial, &final_, 4, 1e-7, &mut rng)
                    .unwrap(),
                "{} broke the circuit",
                router.name()
            );
        }
    }

    #[test]
    fn already_executable_circuits_are_untouched() {
        let dev = Device::get(DeviceId::OqcLucy);
        let mut qc = QuantumCircuit::new(8);
        qc.cx(0, 1).cx(1, 2).cx(7, 0).h(3);
        for router in all_routers() {
            let out = router.apply(&qc, &PassContext::for_device(&dev)).unwrap();
            assert_eq!(
                out.circuit.num_two_qubit_gates(),
                3,
                "{} inserted needless swaps",
                router.name()
            );
            let WireEffect::Permute(perm) = out.effect else {
                panic!()
            };
            assert!(perm.iter().enumerate().all(|(i, &p)| i as u32 == p));
        }
    }

    #[test]
    fn too_wide_circuit_is_rejected() {
        let dev = Device::get(DeviceId::OqcLucy);
        let qc = QuantumCircuit::new(9);
        for router in all_routers() {
            assert!(matches!(
                router.apply(&qc, &PassContext::for_device(&dev)),
                Err(PassError::CircuitTooWide { .. })
            ));
        }
    }

    #[test]
    fn narrow_circuits_are_widened() {
        let dev = Device::get(DeviceId::IbmqMontreal);
        let mut qc = QuantumCircuit::new(3);
        qc.cx(0, 2).cx(1, 2);
        for router in all_routers() {
            let out = router.apply(&qc, &PassContext::for_device(&dev)).unwrap();
            assert_eq!(out.circuit.num_qubits(), 27, "{}", router.name());
            assert!(dev.check_connectivity(&out.circuit));
        }
    }

    #[test]
    fn measures_follow_their_qubit() {
        // Force a swap, then measure: the measure must land on the moved
        // physical qubit.
        let dev = Device::get(DeviceId::OqcLucy);
        let mut qc = QuantumCircuit::new(8);
        qc.cx(0, 4).measure(0).measure(4);
        let out = BasicSwap
            .apply(&qc, &PassContext::for_device(&dev))
            .unwrap();
        let WireEffect::Permute(perm) = out.effect else {
            panic!()
        };
        // Count measures and check they're placed at the permuted spots.
        let measures: Vec<u32> = out
            .circuit
            .iter()
            .filter(|op| op.gate == Gate::Measure)
            .map(|op| op.qubits[0].0)
            .collect();
        assert_eq!(measures.len(), 2);
        assert!(measures.contains(&perm[0]));
        assert!(measures.contains(&perm[4]));
    }

    #[test]
    fn bridge_pattern_is_used_at_distance_two() {
        let dev = Device::get(DeviceId::OqcLucy); // ring of 8
        let mut qc = QuantumCircuit::new(8);
        qc.cx(0, 2); // distance 2 on the ring
        let out = TketRouting::default()
            .apply(&qc, &PassContext::for_device(&dev))
            .unwrap();
        // Bridge: 4 CX, no swaps, identity permutation.
        assert_eq!(out.circuit.count_ops().get("swap"), None);
        assert_eq!(out.circuit.count_ops()["cx"], 4);
        let WireEffect::Permute(perm) = out.effect else {
            panic!()
        };
        assert!(perm.iter().enumerate().all(|(i, &p)| i as u32 == p));
    }

    #[test]
    fn bridge_is_semantically_a_cx() {
        // Verify the 4-CX bridge template equals CX(0,2) exactly.
        let mut bridge = QuantumCircuit::new(3);
        bridge.cx(0, 1).cx(1, 2).cx(0, 1).cx(1, 2);
        let mut cx = QuantumCircuit::new(3);
        cx.cx(0, 2);
        assert!(qrc_sim::equiv::circuits_equivalent(&bridge, &cx, 1e-10).unwrap());
    }

    #[test]
    fn stochastic_routing_is_deterministic_per_seed() {
        let dev = Device::get(DeviceId::OqcLucy);
        let qc = hard_circuit(8);
        let a = StochasticSwap::default()
            .apply(&qc, &PassContext::for_device(&dev).with_seed(11))
            .unwrap();
        let b = StochasticSwap::default()
            .apply(&qc, &PassContext::for_device(&dev).with_seed(11))
            .unwrap();
        assert_eq!(a, b);
        let c = StochasticSwap::default()
            .apply(&qc, &PassContext::for_device(&dev).with_seed(12))
            .unwrap();
        // Different seeds may produce different (still valid) results;
        // only check validity, not inequality.
        assert!(dev.check_connectivity(&c.circuit));
    }

    #[test]
    fn sabre_beats_basic_on_swap_count_for_structured_circuit() {
        let dev = Device::get(DeviceId::IbmqMontreal);
        let qc = hard_circuit(12);
        let basic = BasicSwap
            .apply(&qc, &PassContext::for_device(&dev))
            .unwrap();
        let sabre = SabreSwap::default()
            .apply(&qc, &PassContext::for_device(&dev))
            .unwrap();
        let swaps = |c: &QuantumCircuit| c.count_ops().get("swap").copied().unwrap_or(0);
        // SABRE should rarely be (much) worse; allow slack but catch
        // catastrophic regressions.
        assert!(
            swaps(&sabre.circuit) <= swaps(&basic.circuit) + 3,
            "sabre {} vs basic {}",
            swaps(&sabre.circuit),
            swaps(&basic.circuit)
        );
    }
}
