//! The pipelined front end: reader threads fill a bounded request
//! queue while the batch scheduler drains it, so I/O and compute
//! overlap (a double-buffered pipeline).
//!
//! Two transports share the pipeline:
//!
//! * [`serve_socket`] — a TCP listener speaking NDJSON, one reader and
//!   one writer thread per connection, back-pressure rejections when
//!   the queue is full;
//! * [`serve_stdin`] — the classic stdin/stdout mode, re-plumbed
//!   through the same queue so reading the next lines overlaps with
//!   compiling the previous batch (the reader blocks instead of
//!   rejecting when the queue is full: stdin traffic is lossless).
//!
//! In-band control lines are answered by the front end directly:
//! `{"cmd":"stats"}` returns a live metrics snapshot (including the
//! registry's loaded shard keys and checkpoint mtimes),
//! `{"cmd":"reload"}` rescans the models directory and atomically
//! swaps the shard map (in-flight batches finish on the old one),
//! `{"cmd":"calibrate"}` hot-swaps one device's calibration data and
//! selectively invalidates that device's fidelity-keyed cache entries,
//! and `{"cmd":"shutdown"}` begins a graceful drain — no new requests are
//! admitted, in-flight batches complete, every accepted request is
//! answered, then the serve call returns. On the socket transport,
//! control replies and back-pressure rejections are written as soon as
//! they are produced, so they may overtake compile responses that are
//! still queued; clients correlate by `id`. The stdin transport routes
//! inline replies through the request queue instead, so its responses
//! come back in stream order.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use serde_json::Value;

use crate::protocol::{ControlRequest, InboundLine, ServeRequest, ServeResponse};
use crate::queue::{BoundedQueue, PushError};
use crate::service::{CompilationService, QueuedLine};

/// A cooperative shutdown signal shared by readers, the accept loop,
/// and the scheduler. Set by SIGTERM, `{"cmd":"shutdown"}`, or the
/// embedding application; once requested it never resets.
#[derive(Clone, Debug, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A fresh, unset flag.
    pub fn new() -> Self {
        ShutdownFlag::default()
    }

    /// Requests shutdown (idempotent).
    pub fn request(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Returns `true` once shutdown has been requested.
    pub fn is_requested(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Tuning of the pipelined front end.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Most requests per scheduled batch.
    pub batch_size: usize,
    /// How long the scheduler lingers collecting a fuller batch after
    /// the first request arrives (the batch-collection timeout).
    pub batch_wait: Duration,
    /// Bounded request-queue capacity; beyond it the socket front end
    /// rejects with a structured `overloaded` error.
    pub queue_capacity: usize,
    /// Reject request lines longer than this many bytes without
    /// buffering them.
    pub max_line_bytes: usize,
    /// Emit one structured JSON log line per request to stderr.
    pub log_requests: bool,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            batch_size: 16,
            batch_wait: Duration::from_millis(2),
            queue_capacity: 1024,
            max_line_bytes: 1 << 20,
            log_requests: false,
        }
    }
}

/// Decrements the active-reader count on drop — including on panic —
/// so the accept loop's drain wait can always reach zero.
struct ReaderGuard<'a>(&'a AtomicUsize);

impl Drop for ReaderGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Routes response lines back to one socket client through a
/// *bounded* channel: if the client's reply window fills (it streams
/// requests but never reads responses), the connection is severed
/// instead of buffering unboundedly; the reader then sees EOF and the
/// writer drains what it already holds.
#[derive(Clone)]
struct ReplySink {
    tx: mpsc::SyncSender<String>,
    stream: Arc<TcpStream>,
}

impl ReplySink {
    fn send(&self, line: String) {
        if self.tx.try_send(line).is_err() {
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// One queued request: the raw line plus everything needed to answer
/// it later (arrival instant for queue-wait accounting, the owning
/// connection's writer).
struct Envelope {
    line: String,
    arrival: Instant,
    reply: ReplySink,
    conn: u64,
}

/// Serves NDJSON over TCP until shutdown is requested, then drains and
/// returns. The caller binds the listener (so tests and benchmarks can
/// pick an ephemeral port) and decides what requests shutdown: SIGTERM
/// plumbed into `shutdown`, or a client's `{"cmd":"shutdown"}`.
///
/// # Errors
///
/// Returns the underlying I/O error if the listener cannot be
/// configured. Per-connection errors end that connection only.
pub fn serve_socket(
    service: &Arc<CompilationService>,
    listener: TcpListener,
    config: &FrontendConfig,
    shutdown: &ShutdownFlag,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let queue = Arc::new(BoundedQueue::new(config.queue_capacity.max(1)));
    install_queue_probe(service, &queue);
    let active_readers = Arc::new(AtomicUsize::new(0));

    let accept_loop = {
        let service = Arc::clone(service);
        let queue = Arc::clone(&queue);
        let active_readers = Arc::clone(&active_readers);
        let config = config.clone();
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            let mut next_conn: u64 = 0;
            while !shutdown.is_requested() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // On BSD-likes an accepted socket inherits the
                        // listener's O_NONBLOCK; force blocking so the
                        // per-connection read timeout governs polling
                        // instead of a busy-spin.
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        next_conn += 1;
                        let conn = next_conn;
                        active_readers.fetch_add(1, Ordering::SeqCst);
                        let service = Arc::clone(&service);
                        let queue = Arc::clone(&queue);
                        let active_readers = Arc::clone(&active_readers);
                        let config = config.clone();
                        let shutdown = shutdown.clone();
                        std::thread::spawn(move || {
                            // Drop guard: the count must fall even if
                            // the connection handler panics, or the
                            // shutdown wait below spins forever.
                            let _guard = ReaderGuard(&active_readers);
                            handle_connection(&service, stream, conn, &queue, &config, &shutdown);
                        });
                    }
                    // Nonblocking accept: poll so the shutdown flag is
                    // observed even while no clients connect.
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(25)),
                }
            }
            // Drain: no new connections; readers finish answering or
            // rejecting what they already read, then the queue closes
            // and the scheduler loop below runs dry.
            while active_readers.load(Ordering::SeqCst) > 0 {
                std::thread::sleep(Duration::from_millis(10));
            }
            queue.close();
        })
    };

    drain_queue(service, &queue, config);
    accept_loop.join().expect("accept loop panicked");
    Ok(())
}

/// One unit the stdin pipeline hands from the reader to the drain
/// loop, in arrival order: a request to schedule, or a reply the
/// reader already produced inline (control line, parse error,
/// oversized line). Routing inline replies through the queue keeps
/// stdin responses in stream order and leaves stdout owned by a single
/// thread — the drain loop — so a TERM-initiated drain flushes
/// everything it answered before returning, without having to join a
/// reader that is parked in an uninterruptible blocking stdin read.
enum StdinItem {
    /// A compilation request bound for the scheduler.
    Request { line: String, arrival: Instant },
    /// A reply the reader produced inline, already rendered.
    Answered(String),
}

/// Serves NDJSON on stdin/stdout through the same pipelined queue: a
/// reader thread pulls lines (blocking on back-pressure rather than
/// rejecting) while the scheduler compiles the previous batch. Returns
/// after EOF or `{"cmd":"shutdown"}`, once every read request is
/// answered — or, when `shutdown` is requested out-of-band (the
/// SIGTERM bridge), once everything already read has been answered and
/// flushed, even though the reader may still be parked in a blocking
/// stdin read that no signal will interrupt.
///
/// # Errors
///
/// Returns the stdin read error if the input stream broke mid-session
/// — requests after the break were dropped, and callers should exit
/// nonzero so the client knows responses are missing.
pub fn serve_stdin(
    service: &Arc<CompilationService>,
    config: &FrontendConfig,
    shutdown: &ShutdownFlag,
) -> std::io::Result<()> {
    let queue = Arc::new(BoundedQueue::new(config.queue_capacity.max(1)));
    install_queue_probe(service, &queue);

    let reader = {
        let service = Arc::clone(service);
        let queue = Arc::clone(&queue);
        let config = config.clone();
        let shutdown = shutdown.clone();
        std::thread::spawn(move || -> std::io::Result<()> {
            let mut read_error = None;
            let mut input = std::io::stdin().lock();
            loop {
                if shutdown.is_requested() {
                    break;
                }
                match read_bounded_line(&mut input, config.max_line_bytes, &shutdown) {
                    Err(e) => {
                        read_error = Some(e);
                        break;
                    }
                    Ok(ReadLine::Eof) => break,
                    Ok(ReadLine::TooLong(bytes)) => {
                        let response = oversized_response(bytes, config.max_line_bytes);
                        service.record(&response);
                        let answer = log_reply(&config, 0, &response);
                        if queue.push_wait(StdinItem::Answered(answer)).is_err() {
                            break;
                        }
                    }
                    Ok(ReadLine::Line(line)) => {
                        if line.trim().is_empty() {
                            continue;
                        }
                        match triage(&service, &line, &shutdown, 0, &config) {
                            Triage::Handled(answer) => {
                                let stop = shutdown.is_requested();
                                if queue.push_wait(StdinItem::Answered(answer)).is_err() || stop {
                                    break;
                                }
                            }
                            Triage::Schedule => {
                                let item = StdinItem::Request {
                                    line,
                                    arrival: Instant::now(),
                                };
                                // Lossless: stdin lines block on a full
                                // queue instead of being rejected.
                                if queue.push_wait(item).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            queue.close();
            match read_error {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })
    };

    // The drain loop owns stdout. Between batches it wakes on an idle
    // bound so an out-of-band shutdown (SIGTERM) is observed even while
    // the reader is parked in a blocking stdin read.
    let mut out = std::io::stdout().lock();
    let mut idle_rounds = 0u32;
    loop {
        match queue.pop_batch_or_idle(
            config.batch_size,
            config.batch_wait,
            Duration::from_millis(50),
        ) {
            // Closed and drained: the reader finished (EOF, shutdown
            // command, or broken stream).
            None => break,
            Some((batch, _)) if batch.is_empty() => {
                if shutdown.is_requested() {
                    // Two consecutive idle polls after the flag: the
                    // reader is either parked or about to observe the
                    // flag, and everything it read has been answered.
                    idle_rounds += 1;
                    if idle_rounds >= 2 {
                        break;
                    }
                }
                continue;
            }
            Some((batch, assembly)) => {
                idle_rounds = 0;
                service.record_stage(
                    crate::metrics::Stage::BatchAssembly,
                    assembly.as_micros() as u64,
                );
                // Split in arrival order: schedule the requests, then
                // interleave their responses back between the inline
                // replies so the output stream mirrors the input.
                let mut slots: Vec<Option<String>> = Vec::with_capacity(batch.len());
                let mut items = Vec::new();
                for item in batch {
                    match item {
                        StdinItem::Answered(answer) => slots.push(Some(answer)),
                        StdinItem::Request { line, arrival } => {
                            items.push(QueuedLine {
                                line,
                                queue_us: arrival.elapsed().as_micros() as u64,
                            });
                            slots.push(None);
                        }
                    }
                }
                let responses = service.handle_queued(&items);
                let mut next = responses.iter();
                for slot in slots {
                    match slot {
                        Some(answer) => {
                            let _ = writeln!(out, "{answer}");
                        }
                        None => {
                            if let Some(response) = next.next() {
                                if config.log_requests {
                                    eprintln!("{}", request_log_line(0, response));
                                }
                                let _ = writeln!(out, "{}", response.to_line());
                            }
                        }
                    }
                }
                let _ = out.flush();
            }
        }
    }
    let _ = out.flush();

    // EOF / shutdown-command / broken-stream drains end with the reader
    // closing the queue and finishing: join it for the read error. A
    // TERM-initiated drain instead leaves it parked in a blocking stdin
    // read (SA_RESTART keeps the syscall alive through the signal) —
    // poll briefly, then return without joining: everything read was
    // answered and flushed above, and process exit reclaims the thread.
    if !shutdown.is_requested() {
        return reader.join().expect("stdin reader panicked");
    }
    for _ in 0..50 {
        if reader.is_finished() {
            return reader.join().expect("stdin reader panicked");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    Ok(())
}

/// The scheduler half of the pipeline: pops batches off the queue
/// (waiting up to the batch-collection timeout for a fuller one),
/// schedules them, and routes each response line back to its
/// connection. Returns once the queue is closed and drained.
fn drain_queue(
    service: &Arc<CompilationService>,
    queue: &BoundedQueue<Envelope>,
    config: &FrontendConfig,
) {
    while let Some((batch, assembly)) = queue.pop_batch_timed(config.batch_size, config.batch_wait)
    {
        // One sample per batch: the linger the batching policy added on
        // top of queue wait (phase-1 idle blocking is excluded).
        service.record_stage(
            crate::metrics::Stage::BatchAssembly,
            assembly.as_micros() as u64,
        );
        let mut items = Vec::with_capacity(batch.len());
        let mut routes = Vec::with_capacity(batch.len());
        for envelope in batch {
            items.push(QueuedLine {
                line: envelope.line,
                queue_us: envelope.arrival.elapsed().as_micros() as u64,
            });
            routes.push((envelope.reply, envelope.conn));
        }
        let responses = service.handle_queued(&items);
        for (response, (reply, conn)) in responses.iter().zip(&routes) {
            if config.log_requests {
                eprintln!("{}", request_log_line(*conn, response));
            }
            reply.send(response.to_line());
        }
    }
}

/// Hands the service a live view of this front end's request queue:
/// `{"cmd":"stats"}` and the Prometheus rendering report its depth as
/// a gauge.
fn install_queue_probe<T: Send + 'static>(
    service: &Arc<CompilationService>,
    queue: &Arc<BoundedQueue<T>>,
) {
    let probe_queue = Arc::clone(queue);
    service.install_queue_probe(Box::new(move || probe_queue.len() as u64));
}

/// Binds `preferred` when given, falling back to an ephemeral loopback
/// port (with a warning) when that address is busy or unbindable; with
/// no preference it binds an ephemeral loopback port directly. Shared
/// by the bench harness's pipelined arm and the router/replica test
/// fixtures, which all want "the requested port if free, any free
/// port otherwise".
///
/// # Errors
///
/// Returns the I/O error if even the ephemeral fallback bind fails.
pub fn bind_ephemeral(preferred: Option<&str>) -> std::io::Result<TcpListener> {
    if let Some(addr) = preferred {
        match TcpListener::bind(addr) {
            Ok(listener) => return Ok(listener),
            Err(e) => eprintln!(
                "warning: could not bind {addr} ({e}); retrying on an ephemeral loopback port"
            ),
        }
    }
    TcpListener::bind("127.0.0.1:0")
}

/// SIGTERM → graceful drain. Signal handlers may only touch atomics,
/// so the handler sets a process-global flag and a watcher thread
/// forwards it to the front end's [`ShutdownFlag`]. Install before
/// any (possibly minutes-long) model startup: a TERM during training
/// marks the flag, startup completes, and the front end drains
/// immediately and exits cleanly instead of dying with exit 143.
#[cfg(unix)]
pub fn install_sigterm_bridge(shutdown: &ShutdownFlag) {
    static SIGTERM_RECEIVED: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_sigterm(_signum: i32) {
        SIGTERM_RECEIVED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
    let shutdown = shutdown.clone();
    std::thread::spawn(move || loop {
        if SIGTERM_RECEIVED.load(Ordering::SeqCst) {
            shutdown.request();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
}

/// SIGTERM → graceful drain (no-op off Unix: no SIGTERM to bridge).
#[cfg(not(unix))]
pub fn install_sigterm_bridge(_shutdown: &ShutdownFlag) {}

/// How the front end disposed of one inbound line before scheduling.
enum Triage {
    /// Answered directly (control command or front-end error); the
    /// reply line is ready to send.
    Handled(String),
    /// A compilation request: enqueue it for the scheduler.
    Schedule,
}

/// Answers control lines and malformed control-looking lines inline;
/// everything else is scheduled. The substring probe keeps the common
/// path single-parse: compilation requests are only decoded once, by
/// the scheduler.
fn triage(
    service: &CompilationService,
    line: &str,
    shutdown: &ShutdownFlag,
    conn: u64,
    config: &FrontendConfig,
) -> Triage {
    if !line.contains("\"cmd\"") {
        return Triage::Schedule;
    }
    match InboundLine::parse(line) {
        Ok(InboundLine::Control(ControlRequest::Stats)) => {
            Triage::Handled(serde_json::to_string(&service.stats_value()))
        }
        Ok(InboundLine::Control(ControlRequest::Reload)) => {
            Triage::Handled(serde_json::to_string(&service.reload_value()))
        }
        Ok(InboundLine::Control(ControlRequest::Snapshot)) => {
            Triage::Handled(serde_json::to_string(&service.snapshot_value()))
        }
        Ok(InboundLine::Control(ControlRequest::Metrics)) => {
            Triage::Handled(serde_json::to_string(&service.metrics_value()))
        }
        Ok(InboundLine::Control(ControlRequest::Calibrate {
            device,
            calibration,
        })) => Triage::Handled(serde_json::to_string(
            &service.calibrate_value(&device, &calibration),
        )),
        Ok(InboundLine::Control(ControlRequest::Shutdown)) => {
            shutdown.request();
            Triage::Handled(serde_json::to_string(&Value::object(vec![
                ("ok", Value::from(true)),
                ("shutting_down", Value::from(true)),
            ])))
        }
        // `"cmd"` appeared inside an ordinary request's payload.
        Ok(InboundLine::Request(_)) => Triage::Schedule,
        Err(message) => {
            let response = ServeResponse {
                // Front-end replies can overtake queued responses, so
                // clients correlate by id — echo it when present.
                id: ServeRequest::recover_id(line),
                result: Err(message),
                // Same clock-resolution floor as the service's line
                // paths: never push 0 into the latency window.
                micros: 1,
                route: None,
                rid: None,
            };
            service.record(&response);
            Triage::Handled(log_reply(config, conn, &response))
        }
    }
}

/// Emits the structured log line for a reader-produced response
/// (front-end error, oversized line, overload rejection) when logging
/// is enabled — the same visibility scheduled responses get in
/// [`drain_queue`] — and renders it for the wire. Metric recording
/// stays at the call site: rejections count under `rejected`, errors
/// under `errors`.
fn log_reply(config: &FrontendConfig, conn: u64, response: &ServeResponse) -> String {
    if config.log_requests {
        eprintln!("{}", request_log_line(conn, response));
    }
    response.to_line()
}

/// One connection's reader: pulls bounded lines, answers control and
/// overload inline, enqueues the rest, and stops on EOF, error, or
/// shutdown. Owns the connection's writer thread.
fn handle_connection(
    service: &Arc<CompilationService>,
    stream: TcpStream,
    conn: u64,
    queue: &BoundedQueue<Envelope>,
    config: &FrontendConfig,
    shutdown: &ShutdownFlag,
) {
    let write_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    // A third handle lets the reply sink sever a connection whose
    // client stopped reading (the slow-consumer disconnect).
    let disconnect_handle = match stream.try_clone() {
        Ok(clone) => Arc::new(clone),
        Err(_) => return,
    };
    // The reply window bounds unread responses per connection. It sits
    // above the kernel's own socket buffering, so only a client that
    // has genuinely stopped reading can fill it.
    let (reply_tx, reply_rx) = mpsc::sync_channel::<String>(config.queue_capacity.max(256));
    let reply = ReplySink {
        tx: reply_tx,
        stream: disconnect_handle,
    };
    let writer = std::thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        write_loop(&mut out, &reply_rx);
    });

    // Poll reads so a quiet connection still observes shutdown.
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    let mut reader = BufReader::new(stream);
    loop {
        if shutdown.is_requested() {
            break;
        }
        match read_bounded_line(&mut reader, config.max_line_bytes, shutdown) {
            Err(_) | Ok(ReadLine::Eof) => break,
            Ok(ReadLine::TooLong(bytes)) => {
                let response = oversized_response(bytes, config.max_line_bytes);
                service.record(&response);
                reply.send(log_reply(config, conn, &response));
            }
            Ok(ReadLine::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                match triage(service, &line, shutdown, conn, config) {
                    Triage::Handled(answer) => {
                        reply.send(answer);
                        if shutdown.is_requested() {
                            break;
                        }
                    }
                    Triage::Schedule => {
                        let envelope = Envelope {
                            line,
                            arrival: Instant::now(),
                            reply: reply.clone(),
                            conn,
                        };
                        match queue.try_push(envelope) {
                            Ok(()) => {}
                            Err(PushError::Full(envelope)) => {
                                service.record_rejected();
                                let response = ServeResponse::overloaded(ServeRequest::recover_id(
                                    &envelope.line,
                                ));
                                reply.send(log_reply(config, conn, &response));
                            }
                            Err(PushError::Closed(_)) => break,
                        }
                    }
                }
            }
        }
    }
    drop(reply);
    writer.join().expect("connection writer panicked");
}

/// Writes reply lines as they arrive, coalescing bursts into one
/// flush. Exits when every sender is gone or the sink breaks.
pub(crate) fn write_loop<W: Write>(out: &mut W, replies: &mpsc::Receiver<String>) {
    while let Ok(line) = replies.recv() {
        if writeln!(out, "{line}").is_err() {
            return;
        }
        while let Ok(more) = replies.try_recv() {
            if writeln!(out, "{more}").is_err() {
                return;
            }
        }
        if out.flush().is_err() {
            return;
        }
    }
    let _ = out.flush();
}

/// One bounded line read.
pub(crate) enum ReadLine {
    /// The stream ended.
    Eof,
    /// A line exceeded the byte limit (its length so far; the rest of
    /// the line was discarded without buffering).
    TooLong(usize),
    /// A complete line (without the trailing newline).
    Line(String),
}

/// Reads one `\n`-terminated line of at most `max` bytes, never
/// buffering more than the limit. Read timeouts poll the shutdown
/// flag (a requested shutdown reads as EOF), so blocked socket reads
/// wake up to drain.
pub(crate) fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    max: usize,
    shutdown: &ShutdownFlag,
) -> std::io::Result<ReadLine> {
    let mut line: Vec<u8> = Vec::new();
    let mut total: usize = 0;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.is_requested() {
                    return Ok(ReadLine::Eof);
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF: a final unterminated line still counts.
            return Ok(match (total, total > max) {
                (0, _) => ReadLine::Eof,
                (_, true) => ReadLine::TooLong(total),
                (_, false) => ReadLine::Line(String::from_utf8_lossy(&line).into_owned()),
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let upto = newline.unwrap_or(chunk.len());
        total += upto;
        if total <= max {
            line.extend_from_slice(&chunk[..upto]);
        } else {
            // Keep memory bounded: stop copying once over the limit.
            let room = max.saturating_sub(line.len());
            line.extend_from_slice(&chunk[..upto.min(room)]);
        }
        let consumed = upto + usize::from(newline.is_some());
        reader.consume(consumed);
        if newline.is_some() {
            return Ok(if total > max {
                ReadLine::TooLong(total)
            } else {
                ReadLine::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
    }
}

/// The structured error answering an over-limit request line (same
/// message as the service's own size check).
fn oversized_response(bytes: usize, limit: usize) -> ServeResponse {
    ServeResponse {
        id: None,
        result: Err(crate::service::oversized_error(bytes, limit)),
        // Same clock-resolution floor as the service's line paths.
        micros: 1,
        route: None,
        rid: None,
    }
}

/// One structured per-request log line (stderr), emitted when
/// [`FrontendConfig::log_requests`] is set.
fn request_log_line(conn: u64, response: &ServeResponse) -> String {
    let (ok, cache) = match &response.result {
        Ok((_, status)) => (true, Value::from(status.name())),
        Err(_) => (false, Value::Null),
    };
    serde_json::to_string(&Value::object(vec![
        ("evt", Value::from("request")),
        ("conn", Value::from(conn)),
        (
            "id",
            match &response.id {
                Some(id) => Value::from(id.clone()),
                None => Value::Null,
            },
        ),
        ("ok", Value::from(ok)),
        ("cache", cache),
        (
            "shard",
            match &response.route {
                Some(route) => Value::from(route.shard.name()),
                None => Value::Null,
            },
        ),
        ("micros", Value::from(response.micros)),
        (
            // The service-assigned request ID, matching the `rid` echo
            // on the response line and the trace span's track — absent
            // for replies the front end produced without scheduling.
            "rid",
            match response.rid {
                Some(rid) => Value::from(rid),
                None => Value::Null,
            },
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flag() -> ShutdownFlag {
        ShutdownFlag::new()
    }

    #[test]
    fn bounded_line_reader_splits_and_limits() {
        let data = b"short\nexactly10\nway too long for the limit\nlast";
        let mut reader = BufReader::new(&data[..]);
        let max = 10;
        let s = flag();
        assert!(matches!(
            read_bounded_line(&mut reader, max, &s).unwrap(),
            ReadLine::Line(l) if l == "short"
        ));
        assert!(matches!(
            read_bounded_line(&mut reader, max, &s).unwrap(),
            ReadLine::Line(l) if l == "exactly10"
        ));
        match read_bounded_line(&mut reader, max, &s).unwrap() {
            ReadLine::TooLong(bytes) => assert_eq!(bytes, "way too long for the limit".len()),
            other => panic!("expected TooLong, got {:?}", discriminant_name(&other)),
        }
        // The oversized line was fully discarded; the stream resumes
        // cleanly at the next line (unterminated final line included).
        assert!(matches!(
            read_bounded_line(&mut reader, max, &s).unwrap(),
            ReadLine::Line(l) if l == "last"
        ));
        assert!(matches!(
            read_bounded_line(&mut reader, max, &s).unwrap(),
            ReadLine::Eof
        ));
    }

    fn discriminant_name(r: &ReadLine) -> &'static str {
        match r {
            ReadLine::Eof => "Eof",
            ReadLine::TooLong(_) => "TooLong",
            ReadLine::Line(_) => "Line",
        }
    }

    #[test]
    fn shutdown_flag_is_sticky_and_shared() {
        let a = flag();
        let b = a.clone();
        assert!(!b.is_requested());
        a.request();
        assert!(b.is_requested());
    }

    #[test]
    fn recover_id_is_best_effort() {
        assert_eq!(
            ServeRequest::recover_id(r#"{"id":"r7","qasm":"x"}"#),
            Some("r7".to_string())
        );
        assert_eq!(ServeRequest::recover_id(r#"{"qasm":"x"}"#), None);
        assert_eq!(ServeRequest::recover_id("not json"), None);
    }
}
