//! [`CompilationService`]: the composition of registry, cache,
//! scheduler, and metrics behind one `handle_*` API, with copy-on-swap
//! registry hot-reload.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use qrc_benchgen::paper_suite;
use qrc_device::{CalibrationSpec, DeviceId, DeviceRegistry};
use qrc_obs::{TraceEvent, TraceSink};
use qrc_predictor::PersistError;
use serde_json::Value;

use crate::cache::{CacheKey, ResultCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics, Stage};
use crate::persist::{
    head_of_distribution, load_snapshot_file, snapshot_path, CacheSnapshot, PersistedEntry,
    SnapshotDeviceStamp, SnapshotLoad, SnapshotShardStamp, TrafficLog,
};
use crate::protocol::{ServeRequest, ServeResponse};
use crate::registry::{ModelRegistry, ReloadReport};
use crate::scheduler;
use crate::shard::ShardKey;

/// Startup configuration of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Directory holding (or receiving) model checkpoints.
    pub models_dir: PathBuf,
    /// Extra shards to ensure at startup (trained on their scoped
    /// benchmark slice when the checkpoint is missing), on top of the
    /// three objective-only wildcard shards that are always ensured.
    pub shards: Vec<ShardKey>,
    /// Training budget per objective when a checkpoint is missing.
    pub timesteps: usize,
    /// Master seed: drives missing-model training and, mixed with each
    /// job's content hash, the per-job rollout seeds.
    pub seed: u64,
    /// Reward-shaping penalty for missing-model training.
    pub step_penalty: f64,
    /// Largest width of the training suite for missing models.
    pub train_max_qubits: u32,
    /// Total result-cache capacity (entries).
    pub cache_capacity: usize,
    /// Number of cache shards.
    pub cache_shards: usize,
    /// Fan cache misses across the rayon pool.
    pub parallel: bool,
    /// Stack concurrent misses into batched matrix-matrix policy
    /// forwards (bit-identical to the serial path; `false` keeps the
    /// one-forward-per-job reference path).
    pub batch_inference: bool,
    /// Serve misses with the gate-checked int8 policy (implies batched
    /// inference; models whose equivalence gate fails fall back to the
    /// bit-exact f64 path per model).
    pub quantized: bool,
    /// Print training progress to stderr during a cold start.
    pub verbose: bool,
    /// Reject request lines longer than this many bytes before
    /// parsing them (a size limit, so one oversized payload cannot
    /// balloon memory).
    pub max_request_bytes: usize,
    /// Reject circuits wider than this many qubits at admission.
    pub max_circuit_qubits: u32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            models_dir: PathBuf::from("models"),
            shards: Vec::new(),
            timesteps: 8_000,
            seed: 3,
            step_penalty: 0.005,
            train_max_qubits: 6,
            cache_capacity: 4096,
            cache_shards: 16,
            parallel: true,
            batch_inference: true,
            quantized: false,
            verbose: true,
            max_request_bytes: 1 << 20,
            max_circuit_qubits: 128,
        }
    }
}

/// One NDJSON line annotated with the time it spent queued in the
/// front end before being scheduled — the pipelined reader records the
/// arrival instant, and the wait is folded into the reported latency.
#[derive(Debug, Clone)]
pub struct QueuedLine {
    /// The raw request line.
    pub line: String,
    /// Microseconds between arrival and batch scheduling.
    pub queue_us: u64,
}

/// Reads the live request-queue depth of whichever front end is
/// driving the service (the queue lives in the front end, not here).
type QueueDepthProbe = Box<dyn Fn() -> u64 + Send + Sync>;

/// A running compilation service: models loaded, cache warm-able,
/// ready to answer batches.
///
/// The registry is held behind a copy-on-swap snapshot: every batch
/// routes against one [`Arc<ModelRegistry>`] clone taken at batch
/// start, and a hot-reload atomically replaces the shared snapshot —
/// in-flight batches finish on the shard map they started with while
/// new batches route against fresh checkpoints. No request is ever
/// dropped by a reload.
pub struct CompilationService {
    registry: RwLock<Arc<ModelRegistry>>,
    /// Serializes reloads end to end (rescan → swap → cache purge):
    /// two concurrent rescans interleaving with a quarantine could
    /// otherwise swap in a map that silently drops a healthy shard.
    /// Snapshot writes take the same lock, so a snapshot and a reload
    /// are safe in either order but never interleaved.
    reload_lock: Mutex<()>,
    /// Where hot-reloads rescan checkpoints from (`None` for purely
    /// in-memory registries built by tests and the bench harness).
    models_dir: Option<PathBuf>,
    reloads: AtomicU64,
    /// Live recalibrations applied since start.
    calibrations: AtomicU64,
    /// Cache entries invalidated by recalibrations (fidelity-keyed
    /// answers of the recalibrated device only).
    calibration_invalidated: AtomicU64,
    cache: ResultCache,
    /// Total cache capacity — caps how many unique jobs a traffic-log
    /// warmup pre-compiles (warming beyond capacity just evicts).
    cache_capacity: usize,
    metrics: ServeMetrics,
    /// Optional append-only log of served compilation requests.
    traffic_log: Mutex<Option<TrafficLog>>,
    /// Entries resident when warmup finished (0 = cold start).
    warm_entries: AtomicU64,
    /// When the last snapshot was written and how many entries it held.
    last_snapshot: Mutex<Option<(Instant, u64)>>,
    seed: u64,
    batch_options: scheduler::BatchOptions,
    max_request_bytes: usize,
    /// Monotone request-ID source: every line the service answers gets
    /// the next `rid`, in admission order, echoed on the wire and
    /// stamped on log lines and trace spans.
    rids: AtomicU64,
    /// The active span sink (disabled unless tracing was enabled).
    trace: RwLock<Arc<TraceSink>>,
    /// Live queue-depth gauge, installed by the pipelined front ends.
    queue_probe: RwLock<Option<QueueDepthProbe>>,
    /// The last offline retraining run's persisted report, read from
    /// [`RETRAIN_STATE_FILE`](crate::retrain::RETRAIN_STATE_FILE)
    /// beside the checkpoints at startup and after every reload (a
    /// reload is the moment a finished `qrc-retrain` run becomes
    /// visible to this process).
    retrain_state: Mutex<Option<Value>>,
}

/// What loading a persisted cache snapshot did at startup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotWarmup {
    /// Entries imported into the cache.
    pub loaded: u64,
    /// Entries dropped because their shard's checkpoint changed since
    /// the snapshot (or the shard is gone): a swapped model must never
    /// serve a stale persisted answer.
    pub stale_dropped: u64,
    /// Calibration-keyed entries dropped because their device was
    /// recalibrated since the snapshot (the device's live calibration
    /// hash no longer matches the persisted stamp).
    pub calibration_dropped: u64,
    /// Entry lines skipped because they name a device this process's
    /// registry does not know (a vanished dynamic spec).
    pub unknown_skipped: u64,
    /// `true` when a torn/truncated snapshot was quarantined to
    /// `.corrupt` (the service cold-starts cleanly).
    pub quarantined: bool,
    /// `true` when no snapshot file existed.
    pub missing: bool,
}

/// What replaying a traffic log did at startup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayWarmup {
    /// `true` when the log file did not exist yet — an empty warmup,
    /// not an error, so one fixed restart command that both writes and
    /// replays the same log path self-bootstraps on first boot.
    pub missing: bool,
    /// Request lines read from the log.
    pub log_requests: usize,
    /// Unique jobs in the replayed head of the distribution.
    pub unique_jobs: usize,
    /// Jobs that compiled (or were already cached) successfully.
    pub compiled: u64,
    /// Jobs that failed admission or compilation (left cold).
    pub failed: u64,
}

/// The outcome of one snapshot write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotWritten {
    /// Entries persisted.
    pub entries: u64,
    /// Resident entries skipped: their serving shard has no checkpoint
    /// on disk to validate against (in-memory models), or their policy
    /// generation is no longer current (a reload raced the batch that
    /// produced them).
    pub skipped: u64,
    /// Where the snapshot landed.
    pub path: PathBuf,
}

impl CompilationService {
    /// Starts a service from `config`: loads every checkpoint in
    /// `models_dir`, training and persisting missing shards first (a
    /// warm start with every required checkpoint present trains
    /// nothing).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] when checkpoints are corrupt or the
    /// models directory is unwritable.
    pub fn start(config: &ServiceConfig) -> Result<CompilationService, PersistError> {
        let suite = paper_suite(2, config.train_max_qubits);
        let verbose = config.verbose;
        let registry = ModelRegistry::ensure_with_shards(
            &config.models_dir,
            &suite,
            &config.shards,
            config.timesteps,
            config.seed,
            config.step_penalty,
            |name| {
                if verbose {
                    eprintln!("training missing model for shard `{name}`…");
                }
            },
        )?;
        let mut service = Self::with_registry(registry, config);
        service.models_dir = Some(config.models_dir.clone());
        service.refresh_retrain_state();
        Ok(service)
    }

    /// Builds a service around an existing registry (no disk access;
    /// used by the bench harness and tests). Hot-reload is unavailable
    /// — there is no models directory to rescan.
    pub fn with_registry(registry: ModelRegistry, config: &ServiceConfig) -> CompilationService {
        CompilationService {
            registry: RwLock::new(Arc::new(registry)),
            reload_lock: Mutex::new(()),
            models_dir: None,
            reloads: AtomicU64::new(0),
            calibrations: AtomicU64::new(0),
            calibration_invalidated: AtomicU64::new(0),
            cache: ResultCache::new(config.cache_capacity, config.cache_shards),
            cache_capacity: config.cache_capacity,
            metrics: ServeMetrics::new(),
            traffic_log: Mutex::new(None),
            warm_entries: AtomicU64::new(0),
            last_snapshot: Mutex::new(None),
            seed: config.seed,
            batch_options: scheduler::BatchOptions {
                parallel: config.parallel,
                max_qubits: config.max_circuit_qubits,
                inference: match (config.quantized, config.batch_inference) {
                    (true, _) => scheduler::InferenceMode::Int8Batched,
                    (false, true) => scheduler::InferenceMode::F64Batched,
                    (false, false) => scheduler::InferenceMode::F64Serial,
                },
            },
            max_request_bytes: config.max_request_bytes,
            rids: AtomicU64::new(0),
            trace: RwLock::new(Arc::new(TraceSink::disabled())),
            queue_probe: RwLock::new(None),
            retrain_state: Mutex::new(None),
        }
    }

    /// Re-reads the persisted retrain report (written by `qrc-retrain`
    /// beside the checkpoints) into the stats cache. Best-effort: a
    /// missing or garbled state file reads as "no retrain yet".
    fn refresh_retrain_state(&self) {
        let state = self
            .models_dir
            .as_deref()
            .and_then(crate::retrain::load_retrain_state);
        *self.retrain_state.lock().expect("retrain state poisoned") = state;
    }

    /// Enables request tracing: one request in `sample_every` gets a
    /// span tree in the returned sink (0 disables). The sink is also
    /// retrievable later via [`Self::trace_sink`], e.g. to write the
    /// Chrome-trace file at drain.
    pub fn enable_tracing(&self, sample_every: u64) -> Arc<TraceSink> {
        let sink = Arc::new(TraceSink::new(
            sample_every,
            qrc_obs::trace::DEFAULT_TRACE_CAPACITY,
        ));
        *self.trace.write().expect("trace sink poisoned") = Arc::clone(&sink);
        sink
    }

    /// The active trace sink (a disabled sink when tracing is off).
    pub fn trace_sink(&self) -> Arc<TraceSink> {
        Arc::clone(&self.trace.read().expect("trace sink poisoned"))
    }

    /// Installs the live queue-depth gauge. The bounded request queue
    /// belongs to the front end, so [`serve_socket`](crate::listener)
    /// and [`serve_stdin`](crate::listener) hand the service a probe at
    /// startup; `{"cmd":"stats"}` and the Prometheus rendering read it.
    pub fn install_queue_probe(&self, probe: QueueDepthProbe) {
        *self.queue_probe.write().expect("queue probe poisoned") = Some(probe);
    }

    /// The front-end queue's current depth, when a probe is installed.
    pub fn queue_depth(&self) -> Option<u64> {
        self.queue_probe
            .read()
            .expect("queue probe poisoned")
            .as_ref()
            .map(|probe| probe())
    }

    /// The current registry snapshot. Batches hold the snapshot they
    /// started with; a concurrent reload only affects later batches.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.registry.read().expect("registry lock poisoned"))
    }

    /// Rescans the models directory and atomically swaps in the fresh
    /// shard map. Corrupt checkpoints are quarantined to `.corrupt`
    /// with the previously loaded shard kept serving; in-flight batches
    /// finish on the old snapshot; nothing is trained. Cached results
    /// whose serving shard's policy changed are invalidated, so
    /// re-routed traffic recomputes under the new checkpoint instead
    /// of replaying the old policy's answers.
    ///
    /// Concurrent reloads are serialized end to end: a second
    /// `{"cmd":"reload"}` waits for the first to finish rather than
    /// rescanning a directory mid-quarantine.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] when the service has no models
    /// directory (in-memory registry) or on real I/O failures — the
    /// old registry keeps serving in both cases.
    pub fn reload(&self) -> Result<ReloadReport, PersistError> {
        let dir = self.models_dir.as_ref().ok_or_else(|| {
            PersistError::Format(
                "this service was started from an in-memory registry; there is no \
                 models directory to reload from"
                    .into(),
            )
        })?;
        let _serialized = self.reload_lock.lock().expect("reload lock poisoned");
        let previous = self.registry();
        let (fresh, mut report) = ModelRegistry::rescan(dir, &previous)?;
        let changed: std::collections::HashSet<_> =
            ModelRegistry::changed_shards(&previous, &fresh)
                .into_iter()
                .collect();
        *self.registry.write().expect("registry lock poisoned") = Arc::new(fresh);
        // Purge changed shards' entries. This is memory hygiene, not a
        // correctness gate: cache keys carry the policy generation, so
        // even a batch still running on the old snapshot can only
        // read/write its own generation's entries — the purge just
        // frees what the new routing can no longer reach. Unchanged
        // shards keep their warm entries (their generation survives
        // the rescan).
        report.invalidated = self.cache.retain(|key| !changed.contains(&key.shard));
        self.reloads.fetch_add(1, Ordering::Relaxed);
        self.refresh_retrain_state();
        Ok(report)
    }

    /// Performs a hot-reload and renders the `{"cmd":"reload"}` reply:
    /// `{"ok":true,"reloaded":true,…}` with the reload report and the
    /// resulting shard set, or `{"ok":false,"error":…}` (the old
    /// registry keeps serving on failure).
    pub fn reload_value(&self) -> Value {
        match self.reload() {
            Ok(report) => {
                let mut pairs: Vec<(String, Value)> = vec![
                    ("ok".into(), Value::from(true)),
                    ("reloaded".into(), Value::from(true)),
                    (
                        "shards".into(),
                        Value::Array(
                            self.registry()
                                .keys()
                                .into_iter()
                                .map(|k| Value::from(k.name()))
                                .collect(),
                        ),
                    ),
                ];
                if let Value::Object(report_pairs) = report.to_value() {
                    pairs.extend(report_pairs);
                }
                Value::object(pairs)
            }
            Err(e) => Value::object(vec![
                ("ok", Value::from(false)),
                ("error", Value::from(format!("reload failed: {e}"))),
            ]),
        }
    }

    /// Number of hot-reloads performed since start.
    pub fn reload_count(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Applies a live recalibration to `device` and selectively purges
    /// the result cache: exactly the calibration-keyed entries
    /// (fidelity/combination objectives) that pinned or landed on that
    /// device are dropped; structure-only answers and every other
    /// device's entries stay warm. Serialized under the reload lock —
    /// the registry's copy-on-swap `Device` means in-flight batches
    /// finish on the calibration snapshot they started with, and no
    /// request ever fails because of a concurrent calibrate.
    ///
    /// Returns `(calibration_generation, entries_invalidated)`.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown device or an invalid
    /// calibration spec; the device keeps its previous calibration and
    /// the cache is untouched on every error path.
    pub fn calibrate(&self, device: &str, calibration: &Value) -> Result<(u64, u64), String> {
        let id = DeviceId::from_name(device).ok_or_else(|| {
            format!(
                "unknown device `{device}` (known: {})",
                DeviceRegistry::all()
                    .iter()
                    .map(|d| DeviceRegistry::name(*d))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
        let spec = CalibrationSpec::from_value(calibration)?;
        let _serialized = self.reload_lock.lock().expect("reload lock poisoned");
        let generation = DeviceRegistry::calibrate(id, spec)?;
        let invalidated = self.cache.retain_entries(|key, value| {
            !(key.shard.objective.uses_calibration()
                && (key.device_pin == Some(id) || value.device == Some(id)))
        });
        self.calibrations.fetch_add(1, Ordering::Relaxed);
        self.calibration_invalidated
            .fetch_add(invalidated, Ordering::Relaxed);
        Ok((generation, invalidated))
    }

    /// Performs a live recalibration and renders the
    /// `{"cmd":"calibrate"}` reply: `{"ok":true,"calibrated":true,…}`
    /// with the device's new calibration generation and the number of
    /// cache entries invalidated, or `{"ok":false,"error":…}` (the
    /// previous calibration keeps serving on failure).
    pub fn calibrate_value(&self, device: &str, calibration: &Value) -> Value {
        match self.calibrate(device, calibration) {
            Ok((generation, invalidated)) => Value::object(vec![
                ("ok", Value::from(true)),
                ("calibrated", Value::from(true)),
                ("device", Value::from(device)),
                ("calibration_generation", Value::from(generation)),
                ("invalidated", Value::from(invalidated)),
            ]),
            Err(e) => Value::object(vec![
                ("ok", Value::from(false)),
                ("error", Value::from(format!("calibrate failed: {e}"))),
            ]),
        }
    }

    /// Number of live recalibrations applied since start.
    pub fn calibration_count(&self) -> u64 {
        self.calibrations.load(Ordering::Relaxed)
    }

    /// Cache entries invalidated by recalibrations since start.
    pub fn calibration_invalidated(&self) -> u64 {
        self.calibration_invalidated.load(Ordering::Relaxed)
    }

    /// Starts appending every scheduled compilation request to the
    /// traffic log at `path` (one canonical request line per request;
    /// control commands and unparseable lines are never logged).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the log cannot be opened.
    pub fn set_traffic_log(&self, path: &Path) -> std::io::Result<()> {
        let log = TrafficLog::append(path)?;
        *self.traffic_log.lock().expect("traffic log poisoned") = Some(log);
        Ok(())
    }

    /// Appends one scheduled batch to the traffic log, if enabled.
    fn log_traffic(&self, requests: &[ServeRequest]) {
        if requests.is_empty() {
            return;
        }
        if let Some(log) = &*self.traffic_log.lock().expect("traffic log poisoned") {
            log.log_batch(requests);
        }
    }

    /// Imports the persisted cache snapshot next to the model
    /// checkpoints, if one exists. Entries whose shard's checkpoint
    /// identity changed since the snapshot are dropped (never served
    /// stale); survivors are rebased onto the live registry's policy
    /// generations and inserted in their original eviction order. A
    /// torn snapshot is quarantined to `.corrupt` and the service
    /// cold-starts — mirroring the registry's torn-checkpoint handling.
    ///
    /// Call before taking traffic, then [`Self::finish_warmup`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] when the service has no models
    /// directory (in-memory registry) or on real I/O failures.
    pub fn load_snapshot(&self) -> Result<SnapshotWarmup, PersistError> {
        let dir = self.persistence_dir()?;
        let mut snapshot = match load_snapshot_file(&snapshot_path(dir))? {
            SnapshotLoad::Missing => {
                return Ok(SnapshotWarmup {
                    missing: true,
                    ..SnapshotWarmup::default()
                })
            }
            SnapshotLoad::Quarantined(_) => {
                return Ok(SnapshotWarmup {
                    quarantined: true,
                    ..SnapshotWarmup::default()
                })
            }
            SnapshotLoad::Loaded(snapshot) => snapshot,
        };
        // Move the entries out so `stamp_of` can keep borrowing the
        // header while they are consumed.
        let entries = std::mem::take(&mut snapshot.entries);
        let registry = self.registry();
        let mut report = SnapshotWarmup {
            unknown_skipped: snapshot.skipped_unknown,
            ..SnapshotWarmup::default()
        };
        // A calibration-keyed entry (fidelity/combination objective) is
        // only restorable when every device it references still has the
        // calibration content it was computed under. Structure-only
        // entries (critical depth) survive any recalibration.
        let calibration_current = |entry: &PersistedEntry| -> bool {
            if !entry.shard.objective.uses_calibration() {
                return true;
            }
            [entry.device_pin, entry.result.device]
                .into_iter()
                .flatten()
                .all(|id| {
                    snapshot.calibration_stamp_of(DeviceRegistry::name(id))
                        == Some(DeviceRegistry::calibration_hash(id))
                })
        };
        let mut imports: Vec<(CacheKey, Arc<crate::protocol::CompiledResult>)> = Vec::new();
        for entry in entries {
            let unchanged = snapshot
                .stamp_of(entry.shard)
                .zip(registry.checkpoint_identity(entry.shard))
                .is_some_and(|(persisted, live)| persisted.matches(&live));
            match (unchanged, registry.generation_of(entry.shard)) {
                (true, Some(generation)) => {
                    if !calibration_current(&entry) {
                        report.calibration_dropped += 1;
                        continue;
                    }
                    imports.push((
                        CacheKey {
                            circuit_hash: entry.circuit_hash,
                            device_pin: entry.device_pin,
                            shard: entry.shard,
                            generation,
                        },
                        Arc::new(entry.result),
                    ));
                }
                _ => report.stale_dropped += 1,
            }
        }
        report.loaded = self.cache.import(imports);
        Ok(report)
    }

    /// Pre-compiles the head of a traffic log's request distribution
    /// (unique jobs ranked by frequency, capped at the cache capacity)
    /// so a restarted server answers its hottest circuits at hit-rate
    /// speed from the first request. Jobs already resident (e.g. just
    /// imported from a snapshot) cost one cache lookup, not a rollout.
    ///
    /// Warmup traffic is invisible to serving metrics and is never
    /// re-appended to the traffic log. Call before taking traffic,
    /// then [`Self::finish_warmup`].
    ///
    /// A log that does not exist yet is an empty warmup, not an error
    /// (the same command that writes the log can replay it from the
    /// first boot on).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the log exists but cannot
    /// be read.
    pub fn replay_log(&self, path: &Path) -> std::io::Result<ReplayWarmup> {
        let requests = match TrafficLog::read_requests(path) {
            Ok(requests) => requests,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(ReplayWarmup {
                    missing: true,
                    ..ReplayWarmup::default()
                })
            }
            Err(e) => return Err(e),
        };
        let head = head_of_distribution(&requests, self.cache_capacity);
        let registry = self.registry();
        let responses = scheduler::run_batch_with(
            &registry,
            &self.cache,
            self.seed,
            &self.batch_options,
            &head,
            None,
        );
        let failed = responses.iter().filter(|r| r.result.is_err()).count() as u64;
        Ok(ReplayWarmup {
            missing: false,
            log_requests: requests.len(),
            unique_jobs: head.len(),
            compiled: head.len() as u64 - failed,
            failed,
        })
    }

    /// Seals the warmup phase: flags every resident entry as *warm*
    /// (their hits count under `warm_hits`) and zeroes the cache's
    /// lookup counters so serving-phase stats start clean. Returns the
    /// number of warm entries. Idempotent; a no-warmup start may skip
    /// it.
    pub fn finish_warmup(&self) -> u64 {
        let warm = self.cache.mark_warm();
        self.cache.reset_counters();
        self.warm_entries.store(warm, Ordering::Relaxed);
        warm
    }

    /// Entries that were resident when warmup finished.
    pub fn warm_entries(&self) -> u64 {
        self.warm_entries.load(Ordering::Relaxed)
    }

    /// Persists the result cache to `cache_snapshot.ndjson` next to
    /// the checkpoints: every resident entry whose serving shard has a
    /// checkpoint on disk *and* whose policy generation is current,
    /// written atomically (fsync before rename) in eviction order.
    /// Serialized against hot-reloads via the reload lock, so a
    /// snapshot taken mid-reload observes either the old registry or
    /// the new one — never a half-swapped hybrid.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] when the service has no models
    /// directory (in-memory registry) or the write fails.
    pub fn write_snapshot(&self) -> Result<SnapshotWritten, PersistError> {
        let dir = self.persistence_dir()?.to_path_buf();
        let _serialized = self.reload_lock.lock().expect("reload lock poisoned");
        let registry = self.registry();
        let mut stamps: Vec<SnapshotShardStamp> = Vec::new();
        let mut entries: Vec<PersistedEntry> = Vec::new();
        let mut skipped = 0u64;
        for (key, value) in self.cache.export() {
            let identity = registry.checkpoint_identity(key.shard);
            match (identity, registry.generation_of(key.shard)) {
                (Some(identity), Some(generation)) if generation == key.generation => {
                    if !stamps.iter().any(|s| s.shard == key.shard) {
                        stamps.push(SnapshotShardStamp {
                            shard: key.shard,
                            identity,
                        });
                    }
                    entries.push(PersistedEntry {
                        circuit_hash: key.circuit_hash,
                        device_pin: key.device_pin,
                        shard: key.shard,
                        result: (*value).clone(),
                    });
                }
                // Unprovable provenance (in-memory shard) or an entry
                // from a superseded policy generation: skipping is the
                // safe choice — restoring it could resurrect an answer
                // its checkpoint no longer stands behind.
                _ => skipped += 1,
            }
        }
        stamps.sort_by_key(|s| s.shard);
        // Stamp every referenced device with its current calibration
        // content hash: a future load drops fidelity-keyed entries
        // whose device was recalibrated in between.
        let mut referenced: Vec<DeviceId> = entries
            .iter()
            .flat_map(|e| [e.device_pin, e.result.device])
            .flatten()
            .collect();
        referenced.sort();
        referenced.dedup();
        let devices: Vec<SnapshotDeviceStamp> = referenced
            .into_iter()
            .map(|id| SnapshotDeviceStamp {
                device: DeviceRegistry::name(id).to_string(),
                calibration_hash: DeviceRegistry::calibration_hash(id),
            })
            .collect();
        let written = entries.len() as u64;
        let path = snapshot_path(&dir);
        CacheSnapshot {
            shards: stamps,
            devices,
            entries,
            skipped_unknown: 0,
        }
        .write(&path)?;
        *self.last_snapshot.lock().expect("snapshot stamp poisoned") =
            Some((Instant::now(), written));
        Ok(SnapshotWritten {
            entries: written,
            skipped,
            path,
        })
    }

    /// Performs a snapshot and renders the `{"cmd":"snapshot"}` reply:
    /// `{"ok":true,"snapshot":true,…}` with entry counts and the file
    /// path, or `{"ok":false,"error":…}` (serving is unaffected either
    /// way).
    pub fn snapshot_value(&self) -> Value {
        match self.write_snapshot() {
            Ok(written) => Value::object(vec![
                ("ok", Value::from(true)),
                ("snapshot", Value::from(true)),
                ("entries", Value::from(written.entries)),
                ("skipped", Value::from(written.skipped)),
                ("path", Value::from(written.path.display().to_string())),
            ]),
            Err(e) => Value::object(vec![
                ("ok", Value::from(false)),
                ("error", Value::from(format!("snapshot failed: {e}"))),
            ]),
        }
    }

    /// The models directory, or the error every persistence entry
    /// point reports for in-memory registries.
    fn persistence_dir(&self) -> Result<&Path, PersistError> {
        self.models_dir.as_deref().ok_or_else(|| {
            PersistError::Format(
                "this service was started from an in-memory registry; there is no \
                 models directory to persist the cache in"
                    .into(),
            )
        })
    }

    /// Processes one batch of already-parsed requests, recording each
    /// response in the service metrics.
    pub fn handle_batch(&self, requests: &[ServeRequest]) -> Vec<ServeResponse> {
        let responses = self.run_batch(requests);
        for response in &responses {
            self.record(response);
        }
        responses
    }

    /// Scheduler entry without metrics recording (callers that adjust
    /// the reported latency first record themselves).
    fn run_batch(&self, requests: &[ServeRequest]) -> Vec<ServeResponse> {
        self.run_batch_queued(requests, None).responses
    }

    /// Scheduler entry with per-request queue waits folded into the
    /// reported latency. The whole batch routes against one registry
    /// snapshot.
    fn run_batch_queued(
        &self,
        requests: &[ServeRequest],
        queue_waits_us: Option<&[u64]>,
    ) -> scheduler::BatchReport {
        // Every served compilation request lands in the traffic log
        // (warmup replays call the scheduler directly and stay out, so
        // a restart never re-amplifies its own warmup).
        self.log_traffic(requests);
        let registry = self.registry();
        let report = scheduler::run_batch_reported(
            &registry,
            &self.cache,
            self.seed,
            &self.batch_options,
            requests,
            queue_waits_us,
        );
        // Per-mode miss counters record what *actually* computed each
        // miss (an int8 request whose gate failed shows up as f64).
        for (mode, count) in [
            (
                scheduler::InferenceMode::F64Serial,
                report.miss_modes.f64_serial,
            ),
            (
                scheduler::InferenceMode::F64Batched,
                report.miss_modes.f64_batched,
            ),
            (
                scheduler::InferenceMode::Int8Batched,
                report.miss_modes.int8_batched,
            ),
        ] {
            self.metrics.record_miss_modes(mode, count);
        }
        // Stage histograms: every scheduled request contributes its own
        // admission time; only the request that claimed a miss
        // contributes compute (hits and coalesced duplicates did no
        // policy work — recording zeros for them would bury the real
        // compute distribution).
        for parts in &report.stages {
            self.metrics
                .record_stage(Stage::Admission, parts.admission_us);
            if parts.compute_us > 0 {
                self.metrics.record_stage(Stage::Compute, parts.compute_us);
            }
        }
        report
    }

    /// Records an already-built response into the service metrics.
    /// Front ends use this for replies they produce without
    /// scheduling (oversized lines, malformed control commands), so
    /// those still count as requests.
    pub fn record(&self, response: &ServeResponse) {
        self.metrics.record(
            response.micros,
            response.result.as_ref().ok().map(|(_, status)| *status),
            response.route.as_ref(),
        );
    }

    /// Processes one NDJSON request line into one NDJSON response line.
    pub fn handle_line(&self, line: &str) -> String {
        let start = Instant::now();
        match ServeRequest::parse(line) {
            Ok(request) => {
                let mut responses = self.run_batch(std::slice::from_ref(&request));
                let mut response = responses.remove(0);
                // For the single-request path, the full wall-clock is
                // the honest latency (parse + schedule + compile) —
                // recorded *and* reported, so `--stats` percentiles
                // agree with what the client saw on the wire.
                response.micros = (start.elapsed().as_micros() as u64).max(1);
                response.rid = Some(self.next_rid());
                self.record(&response);
                response.to_line()
            }
            Err(message) => {
                let response = ServeResponse {
                    id: None,
                    result: Err(message),
                    micros: (start.elapsed().as_micros() as u64).max(1),
                    route: None,
                    rid: Some(self.next_rid()),
                };
                self.record(&response);
                response.to_line()
            }
        }
    }

    /// Processes many NDJSON lines as one scheduled batch, preserving
    /// order. Unparseable lines yield error responses in place.
    pub fn handle_lines(&self, lines: &[String]) -> Vec<String> {
        let items: Vec<(&str, u64)> = lines.iter().map(|line| (line.as_str(), 0)).collect();
        self.handle_queued_inner(&items)
            .iter()
            .map(ServeResponse::to_line)
            .collect()
    }

    /// Processes one batch of queued NDJSON lines, preserving order,
    /// with each line's queue wait folded into its reported latency.
    /// Unparseable and oversized lines yield error responses in place.
    /// Every response is recorded in the service metrics, with honest
    /// per-request wall-clock for hits, errors, and coalesced
    /// duplicates alike (never the `micros: 0` shortcut, and never a
    /// re-report of compute done for another request).
    pub fn handle_queued(&self, items: &[QueuedLine]) -> Vec<ServeResponse> {
        let refs: Vec<(&str, u64)> = items
            .iter()
            .map(|item| (item.line.as_str(), item.queue_us))
            .collect();
        self.handle_queued_inner(&refs)
    }

    /// The borrow-based core of the line paths: `(line, queue_us)`
    /// pairs in, recorded responses out, no line copies.
    fn handle_queued_inner(&self, items: &[(&str, u64)]) -> Vec<ServeResponse> {
        // Parse what we can, timing each line's parse: for hits and
        // errors, parsing *is* most of their real cost.
        let mut slots: Vec<Result<usize, String>> = Vec::with_capacity(items.len());
        let mut parse_us: Vec<u64> = Vec::with_capacity(items.len());
        let mut requests: Vec<ServeRequest> = Vec::new();
        let mut queue_waits: Vec<u64> = Vec::new();
        for (line, queue_us) in items {
            let parse_start = Instant::now();
            if line.len() > self.max_request_bytes {
                slots.push(Err(oversized_error(line.len(), self.max_request_bytes)));
            } else {
                match ServeRequest::parse(line) {
                    Ok(request) => {
                        slots.push(Ok(requests.len()));
                        requests.push(request);
                        queue_waits.push(*queue_us);
                    }
                    Err(message) => slots.push(Err(message)),
                }
            }
            parse_us.push(parse_start.elapsed().as_micros() as u64);
        }
        let report = self.run_batch_queued(&requests, Some(&queue_waits));
        let mut scheduled = report.responses.into_iter().zip(report.stages);
        // Request IDs are handed out in admission order; each batch
        // reserves a contiguous block, so ids within a batch are
        // ordered even when batches race.
        let first_rid = self.rids.fetch_add(items.len() as u64, Ordering::Relaxed) + 1;
        let sink = self.trace_sink();
        let responses: Vec<ServeResponse> = slots
            .into_iter()
            .zip(items)
            .zip(parse_us)
            .enumerate()
            .map(|(index, ((slot, (line, queue_us)), parse_us))| {
                let (mut response, stage_parts) = match slot {
                    Ok(_) => {
                        let (mut response, parts) =
                            scheduled.next().expect("one response per request");
                        response.micros += parse_us;
                        (response, Some(parts))
                    }
                    Err(message) => (
                        ServeResponse {
                            id: ServeRequest::recover_id(line),
                            result: Err(message),
                            micros: queue_us + parse_us,
                            route: None,
                            rid: None,
                        },
                        None,
                    ),
                };
                // Clock-resolution floor: sub-microsecond work (a
                // rejected parse, a tiny cached hit) reports 1µs, not
                // the old `micros: 0` shortcut that dragged p50 to
                // zero at high hit rates.
                response.micros = response.micros.max(1);
                response.rid = Some(first_rid + index as u64);
                self.metrics.record_stage(Stage::QueueWait, *queue_us);
                self.metrics.record_stage(Stage::Parse, parse_us);
                if sink.enabled() && sink.should_sample() {
                    self.push_request_trace(&sink, &response, *queue_us, parse_us, stage_parts);
                }
                response
            })
            .collect();
        for response in &responses {
            self.record(response);
        }
        responses
    }

    /// The next request ID (1-based, admission order).
    fn next_rid(&self) -> u64 {
        self.rids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Synthesizes the sampled span tree for one answered request from
    /// its measured stage durations: a `request` root plus one child
    /// per nonzero stage, laid end to end on the service's monotonic
    /// timeline, with the request's `rid` as the track id — so each
    /// sampled request renders as its own lane in Perfetto.
    fn push_request_trace(
        &self,
        sink: &TraceSink,
        response: &ServeResponse,
        queue_us: u64,
        parse_us: u64,
        parts: Option<scheduler::ResponseStages>,
    ) {
        let rid = response.rid.unwrap_or(0);
        let end_us = self.metrics.uptime_us();
        let start_us = end_us.saturating_sub(response.micros);
        let mut root = TraceEvent::new("request", start_us, response.micros, rid);
        root = match &response.result {
            Ok((_, status)) => root.with_arg("cache", Value::from(status.name())),
            Err(message) => root.with_arg("error", Value::from(message.clone())),
        };
        if let Some(id) = &response.id {
            root = root.with_arg("id", Value::from(id.clone()));
        }
        let mut spans = vec![root];
        let (admission_us, compute_us) = match parts {
            Some(parts) => (parts.admission_us, parts.compute_us),
            None => (0, 0),
        };
        // The measured stages tile the request's wall-clock in the
        // order they actually ran; zero-length stages are elided.
        let mut cursor = start_us;
        for (name, dur_us) in [
            ("queue_wait", queue_us),
            ("parse", parse_us),
            ("admission", admission_us),
            ("compute", compute_us),
        ] {
            if dur_us > 0 {
                spans.push(TraceEvent::new(name, cursor, dur_us, rid));
                cursor += dur_us;
            }
        }
        sink.push(spans);
    }

    /// Records one observation of a front-end pipeline stage (the
    /// listener reports batch-assembly waits through this).
    pub fn record_stage(&self, stage: Stage, micros: u64) {
        self.metrics.record_stage(stage, micros);
    }

    /// A point-in-time copy of one pipeline stage's histogram (the
    /// bench harness reconciles these against reported latencies).
    pub fn stage_histogram(&self, stage: Stage) -> qrc_obs::Histogram {
        self.metrics.stage_histogram(stage)
    }

    /// Counts one back-pressure rejection (the front end answers the
    /// client directly; the request never reaches the scheduler).
    pub fn record_rejected(&self) {
        self.metrics.record_rejected();
    }

    /// Aggregate metrics (requests, errors, cache counters, per-shard
    /// routing counters, latency percentiles).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.cache.stats())
    }

    /// The full `{"cmd":"stats"}` reply: the metrics snapshot plus the
    /// registry block (loaded shard keys, checkpoint paths and mtimes,
    /// reload count), so operators can confirm a hot-reload took
    /// effect.
    pub fn stats_value(&self) -> Value {
        let mut value = self.metrics().to_value();
        if let Value::Object(pairs) = &mut value {
            pairs.push((
                "registry".into(),
                Value::object(vec![
                    ("shards", self.registry().to_value()),
                    ("reloads", Value::from(self.reload_count())),
                ]),
            ));
            // Every device this process can serve, with calibration
            // generation and spec provenance — so operators can confirm
            // a `--device-dir` load or a live calibrate took effect.
            pairs.push((
                "devices".into(),
                Value::object(vec![
                    ("known", DeviceRegistry::devices_value()),
                    ("calibrations", Value::from(self.calibration_count())),
                    (
                        "calibration_invalidated",
                        Value::from(self.calibration_invalidated()),
                    ),
                ]),
            ));
            let (age, entries) = match *self.last_snapshot.lock().expect("snapshot stamp poisoned")
            {
                Some((at, entries)) => (Value::from(at.elapsed().as_secs()), Value::from(entries)),
                None => (Value::Null, Value::Null),
            };
            pairs.push((
                "persistence".into(),
                Value::object(vec![
                    ("warm_entries", Value::from(self.warm_entries())),
                    ("snapshot_age_secs", age),
                    ("snapshot_entries", entries),
                ]),
            ));
            // The last offline retraining run (promotion counters,
            // entropy floor, per-shard gate evidence) — all zeros
            // before any run so the block is always present.
            let retrain = self
                .retrain_state
                .lock()
                .expect("retrain state poisoned")
                .clone()
                .unwrap_or_else(|| crate::retrain::RetrainReport::default().summary_value());
            pairs.push(("retrain".into(), retrain));
            // Live gauge, not a counter: only meaningful while a
            // pipelined front end is driving the service.
            if let Some(depth) = self.queue_depth() {
                pairs.push(("queue_depth".into(), Value::from(depth)));
            }
        }
        value
    }

    /// The full Prometheus text exposition: service counters, latency
    /// and stage histograms, cache and routing counters, the live
    /// queue-depth gauge (when a front end installed its probe), and —
    /// when the global profiler is on — per-pass, per-section, and
    /// per-tick compute histograms.
    pub fn metrics_text(&self) -> String {
        self.metrics
            .render_prometheus(&self.cache.stats(), self.queue_depth())
    }

    /// The `{"cmd":"metrics"}` reply: the Prometheus text embedded in
    /// one NDJSON object, so the line protocol stays line-oriented
    /// (scrape the `metrics` field, or hit `--metrics-listen` for the
    /// raw text over HTTP).
    pub fn metrics_value(&self) -> Value {
        Value::object(vec![
            ("ok", Value::from(true)),
            ("format", Value::from("prometheus_text_0_0_4")),
            ("metrics", Value::from(self.metrics_text())),
        ])
    }

    /// Entries currently resident in the result cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

/// The one wire message for an over-limit request line, shared by the
/// blocking batch path and the front-end readers so both transports
/// speak identical errors.
pub(crate) fn oversized_error(bytes: usize, limit: usize) -> String {
    format!("request line is {bytes} bytes, exceeding the service limit of {limit}")
}
