//! [`CompilationService`]: the composition of registry, cache,
//! scheduler, and metrics behind one `handle_*` API.

use std::path::PathBuf;
use std::time::Instant;

use qrc_benchgen::paper_suite;
use qrc_predictor::PersistError;

use crate::cache::ResultCache;
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::protocol::{ServeRequest, ServeResponse};
use crate::registry::ModelRegistry;
use crate::scheduler;

/// Startup configuration of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Directory holding (or receiving) model checkpoints.
    pub models_dir: PathBuf,
    /// Training budget per objective when a checkpoint is missing.
    pub timesteps: usize,
    /// Master seed: drives missing-model training and, mixed with each
    /// job's content hash, the per-job rollout seeds.
    pub seed: u64,
    /// Reward-shaping penalty for missing-model training.
    pub step_penalty: f64,
    /// Largest width of the training suite for missing models.
    pub train_max_qubits: u32,
    /// Total result-cache capacity (entries).
    pub cache_capacity: usize,
    /// Number of cache shards.
    pub cache_shards: usize,
    /// Fan cache misses across the rayon pool.
    pub parallel: bool,
    /// Print training progress to stderr during a cold start.
    pub verbose: bool,
    /// Reject request lines longer than this many bytes before
    /// parsing them (a size limit, so one oversized payload cannot
    /// balloon memory).
    pub max_request_bytes: usize,
    /// Reject circuits wider than this many qubits at admission.
    pub max_circuit_qubits: u32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            models_dir: PathBuf::from("models"),
            timesteps: 8_000,
            seed: 3,
            step_penalty: 0.005,
            train_max_qubits: 6,
            cache_capacity: 4096,
            cache_shards: 16,
            parallel: true,
            verbose: true,
            max_request_bytes: 1 << 20,
            max_circuit_qubits: 128,
        }
    }
}

/// One NDJSON line annotated with the time it spent queued in the
/// front end before being scheduled — the pipelined reader records the
/// arrival instant, and the wait is folded into the reported latency.
#[derive(Debug, Clone)]
pub struct QueuedLine {
    /// The raw request line.
    pub line: String,
    /// Microseconds between arrival and batch scheduling.
    pub queue_us: u64,
}

/// A running compilation service: models loaded, cache warm-able,
/// ready to answer batches.
pub struct CompilationService {
    registry: ModelRegistry,
    cache: ResultCache,
    metrics: ServeMetrics,
    seed: u64,
    batch_options: scheduler::BatchOptions,
    max_request_bytes: usize,
}

impl CompilationService {
    /// Starts a service from `config`: loads every checkpoint in
    /// `models_dir`, training and persisting missing objectives first
    /// (a warm start with all three checkpoints present trains
    /// nothing).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] when checkpoints are corrupt or the
    /// models directory is unwritable.
    pub fn start(config: &ServiceConfig) -> Result<CompilationService, PersistError> {
        let suite = paper_suite(2, config.train_max_qubits);
        let verbose = config.verbose;
        let registry = ModelRegistry::ensure(
            &config.models_dir,
            &suite,
            config.timesteps,
            config.seed,
            config.step_penalty,
            |name| {
                if verbose {
                    eprintln!("training missing model for objective `{name}`…");
                }
            },
        )?;
        Ok(Self::with_registry(registry, config))
    }

    /// Builds a service around an existing registry (no disk access;
    /// used by the bench harness and tests).
    pub fn with_registry(registry: ModelRegistry, config: &ServiceConfig) -> CompilationService {
        CompilationService {
            registry,
            cache: ResultCache::new(config.cache_capacity, config.cache_shards),
            metrics: ServeMetrics::new(),
            seed: config.seed,
            batch_options: scheduler::BatchOptions {
                parallel: config.parallel,
                max_qubits: config.max_circuit_qubits,
            },
            max_request_bytes: config.max_request_bytes,
        }
    }

    /// Processes one batch of already-parsed requests, recording each
    /// response in the service metrics.
    pub fn handle_batch(&self, requests: &[ServeRequest]) -> Vec<ServeResponse> {
        let responses = self.run_batch(requests);
        for response in &responses {
            self.record(response);
        }
        responses
    }

    /// Scheduler entry without metrics recording (callers that adjust
    /// the reported latency first record themselves).
    fn run_batch(&self, requests: &[ServeRequest]) -> Vec<ServeResponse> {
        self.run_batch_queued(requests, None)
    }

    /// Scheduler entry with per-request queue waits folded into the
    /// reported latency.
    fn run_batch_queued(
        &self,
        requests: &[ServeRequest],
        queue_waits_us: Option<&[u64]>,
    ) -> Vec<ServeResponse> {
        scheduler::run_batch_with(
            &self.registry,
            &self.cache,
            self.seed,
            &self.batch_options,
            requests,
            queue_waits_us,
        )
    }

    /// Records an already-built response into the service metrics.
    /// Front ends use this for replies they produce without
    /// scheduling (oversized lines, malformed control commands), so
    /// those still count as requests.
    pub fn record(&self, response: &ServeResponse) {
        self.metrics.record(
            response.micros,
            response.result.as_ref().ok().map(|(_, status)| *status),
        );
    }

    /// Processes one NDJSON request line into one NDJSON response line.
    pub fn handle_line(&self, line: &str) -> String {
        let start = Instant::now();
        match ServeRequest::parse(line) {
            Ok(request) => {
                let mut responses = self.run_batch(std::slice::from_ref(&request));
                let mut response = responses.remove(0);
                // For the single-request path, the full wall-clock is
                // the honest latency (parse + schedule + compile) —
                // recorded *and* reported, so `--stats` percentiles
                // agree with what the client saw on the wire.
                response.micros = (start.elapsed().as_micros() as u64).max(1);
                self.record(&response);
                response.to_line()
            }
            Err(message) => {
                let response = ServeResponse {
                    id: None,
                    result: Err(message),
                    micros: (start.elapsed().as_micros() as u64).max(1),
                };
                self.record(&response);
                response.to_line()
            }
        }
    }

    /// Processes many NDJSON lines as one scheduled batch, preserving
    /// order. Unparseable lines yield error responses in place.
    pub fn handle_lines(&self, lines: &[String]) -> Vec<String> {
        let items: Vec<(&str, u64)> = lines.iter().map(|line| (line.as_str(), 0)).collect();
        self.handle_queued_inner(&items)
            .iter()
            .map(ServeResponse::to_line)
            .collect()
    }

    /// Processes one batch of queued NDJSON lines, preserving order,
    /// with each line's queue wait folded into its reported latency.
    /// Unparseable and oversized lines yield error responses in place.
    /// Every response is recorded in the service metrics, with honest
    /// per-request wall-clock for hits, errors, and coalesced
    /// duplicates alike (never the `micros: 0` shortcut, and never a
    /// re-report of compute done for another request).
    pub fn handle_queued(&self, items: &[QueuedLine]) -> Vec<ServeResponse> {
        let refs: Vec<(&str, u64)> = items
            .iter()
            .map(|item| (item.line.as_str(), item.queue_us))
            .collect();
        self.handle_queued_inner(&refs)
    }

    /// The borrow-based core of the line paths: `(line, queue_us)`
    /// pairs in, recorded responses out, no line copies.
    fn handle_queued_inner(&self, items: &[(&str, u64)]) -> Vec<ServeResponse> {
        // Parse what we can, timing each line's parse: for hits and
        // errors, parsing *is* most of their real cost.
        let mut slots: Vec<Result<usize, String>> = Vec::with_capacity(items.len());
        let mut parse_us: Vec<u64> = Vec::with_capacity(items.len());
        let mut requests: Vec<ServeRequest> = Vec::new();
        let mut queue_waits: Vec<u64> = Vec::new();
        for (line, queue_us) in items {
            let parse_start = Instant::now();
            if line.len() > self.max_request_bytes {
                slots.push(Err(oversized_error(line.len(), self.max_request_bytes)));
            } else {
                match ServeRequest::parse(line) {
                    Ok(request) => {
                        slots.push(Ok(requests.len()));
                        requests.push(request);
                        queue_waits.push(*queue_us);
                    }
                    Err(message) => slots.push(Err(message)),
                }
            }
            parse_us.push(parse_start.elapsed().as_micros() as u64);
        }
        let mut scheduled = self
            .run_batch_queued(&requests, Some(&queue_waits))
            .into_iter();
        let responses: Vec<ServeResponse> = slots
            .into_iter()
            .zip(items)
            .zip(parse_us)
            .map(|((slot, (line, queue_us)), parse_us)| {
                let mut response = match slot {
                    Ok(_) => {
                        let mut response = scheduled.next().expect("one response per request");
                        response.micros += parse_us;
                        response
                    }
                    Err(message) => ServeResponse {
                        id: ServeRequest::recover_id(line),
                        result: Err(message),
                        micros: queue_us + parse_us,
                    },
                };
                // Clock-resolution floor: sub-microsecond work (a
                // rejected parse, a tiny cached hit) reports 1µs, not
                // the old `micros: 0` shortcut that dragged p50 to
                // zero at high hit rates.
                response.micros = response.micros.max(1);
                response
            })
            .collect();
        for response in &responses {
            self.record(response);
        }
        responses
    }

    /// Counts one back-pressure rejection (the front end answers the
    /// client directly; the request never reaches the scheduler).
    pub fn record_rejected(&self) {
        self.metrics.record_rejected();
    }

    /// Aggregate metrics (requests, errors, cache counters, latency
    /// percentiles).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.cache.stats())
    }

    /// The registry backing this service.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Entries currently resident in the result cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

/// The one wire message for an over-limit request line, shared by the
/// blocking batch path and the front-end readers so both transports
/// speak identical errors.
pub(crate) fn oversized_error(bytes: usize, limit: usize) -> String {
    format!("request line is {bytes} bytes, exceeding the service limit of {limit}")
}
