//! [`CompilationService`]: the composition of registry, cache,
//! scheduler, and metrics behind one `handle_*` API.

use std::path::PathBuf;
use std::time::Instant;

use qrc_benchgen::paper_suite;
use qrc_predictor::PersistError;

use crate::cache::ResultCache;
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::protocol::{ServeRequest, ServeResponse};
use crate::registry::ModelRegistry;
use crate::scheduler;

/// Startup configuration of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Directory holding (or receiving) model checkpoints.
    pub models_dir: PathBuf,
    /// Training budget per objective when a checkpoint is missing.
    pub timesteps: usize,
    /// Master seed: drives missing-model training and, mixed with each
    /// job's content hash, the per-job rollout seeds.
    pub seed: u64,
    /// Reward-shaping penalty for missing-model training.
    pub step_penalty: f64,
    /// Largest width of the training suite for missing models.
    pub train_max_qubits: u32,
    /// Total result-cache capacity (entries).
    pub cache_capacity: usize,
    /// Number of cache shards.
    pub cache_shards: usize,
    /// Fan cache misses across the rayon pool.
    pub parallel: bool,
    /// Print training progress to stderr during a cold start.
    pub verbose: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            models_dir: PathBuf::from("models"),
            timesteps: 8_000,
            seed: 3,
            step_penalty: 0.005,
            train_max_qubits: 6,
            cache_capacity: 4096,
            cache_shards: 16,
            parallel: true,
            verbose: true,
        }
    }
}

/// A running compilation service: models loaded, cache warm-able,
/// ready to answer batches.
pub struct CompilationService {
    registry: ModelRegistry,
    cache: ResultCache,
    metrics: ServeMetrics,
    seed: u64,
    parallel: bool,
}

impl CompilationService {
    /// Starts a service from `config`: loads every checkpoint in
    /// `models_dir`, training and persisting missing objectives first
    /// (a warm start with all three checkpoints present trains
    /// nothing).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] when checkpoints are corrupt or the
    /// models directory is unwritable.
    pub fn start(config: &ServiceConfig) -> Result<CompilationService, PersistError> {
        let suite = paper_suite(2, config.train_max_qubits);
        let verbose = config.verbose;
        let registry = ModelRegistry::ensure(
            &config.models_dir,
            &suite,
            config.timesteps,
            config.seed,
            config.step_penalty,
            |name| {
                if verbose {
                    eprintln!("training missing model for objective `{name}`…");
                }
            },
        )?;
        Ok(Self::with_registry(registry, config))
    }

    /// Builds a service around an existing registry (no disk access;
    /// used by the bench harness and tests).
    pub fn with_registry(registry: ModelRegistry, config: &ServiceConfig) -> CompilationService {
        CompilationService {
            registry,
            cache: ResultCache::new(config.cache_capacity, config.cache_shards),
            metrics: ServeMetrics::new(),
            seed: config.seed,
            parallel: config.parallel,
        }
    }

    /// Processes one batch of already-parsed requests, recording each
    /// response in the service metrics.
    pub fn handle_batch(&self, requests: &[ServeRequest]) -> Vec<ServeResponse> {
        let responses = self.run_batch(requests);
        for response in &responses {
            self.record(response);
        }
        responses
    }

    /// Scheduler entry without metrics recording (callers that adjust
    /// the reported latency first record themselves).
    fn run_batch(&self, requests: &[ServeRequest]) -> Vec<ServeResponse> {
        scheduler::run_batch(
            &self.registry,
            &self.cache,
            self.seed,
            self.parallel,
            requests,
        )
    }

    fn record(&self, response: &ServeResponse) {
        self.metrics.record(
            response.micros,
            response.result.as_ref().ok().map(|(_, status)| *status),
        );
    }

    /// Processes one NDJSON request line into one NDJSON response line.
    pub fn handle_line(&self, line: &str) -> String {
        let start = Instant::now();
        match ServeRequest::parse(line) {
            Ok(request) => {
                let mut responses = self.run_batch(std::slice::from_ref(&request));
                let mut response = responses.remove(0);
                // For the single-request path, the full wall-clock is
                // the honest latency (parse + schedule + compile) —
                // recorded *and* reported, so `--stats` percentiles
                // agree with what the client saw on the wire.
                response.micros = start.elapsed().as_micros() as u64;
                self.record(&response);
                response.to_line()
            }
            Err(message) => {
                let response = ServeResponse {
                    id: None,
                    result: Err(message),
                    micros: start.elapsed().as_micros() as u64,
                };
                self.record(&response);
                response.to_line()
            }
        }
    }

    /// Processes many NDJSON lines as one scheduled batch, preserving
    /// order. Unparseable lines yield error responses in place.
    pub fn handle_lines(&self, lines: &[String]) -> Vec<String> {
        // Parse what we can; remember where each admitted request goes.
        let mut slots: Vec<Result<usize, String>> = Vec::with_capacity(lines.len());
        let mut requests: Vec<ServeRequest> = Vec::new();
        for line in lines {
            match ServeRequest::parse(line) {
                Ok(request) => {
                    slots.push(Ok(requests.len()));
                    requests.push(request);
                }
                Err(message) => slots.push(Err(message)),
            }
        }
        let mut responses = self.handle_batch(&requests).into_iter();
        slots
            .into_iter()
            .map(|slot| match slot {
                Ok(_) => responses
                    .next()
                    .expect("one response per request")
                    .to_line(),
                Err(message) => {
                    let response = ServeResponse {
                        id: None,
                        result: Err(message),
                        micros: 0,
                    };
                    self.record(&response);
                    response.to_line()
                }
            })
            .collect()
    }

    /// Aggregate metrics (requests, errors, cache counters, latency
    /// percentiles).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.cache.stats())
    }

    /// The registry backing this service.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Entries currently resident in the result cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}
