//! The batch scheduler: request stream → deduplicated jobs → rayon
//! worker pool → responses, with results byte-identical to serial
//! execution.
//!
//! Determinism comes from two choices:
//!
//! 1. every job's seed derives from its *content address*
//!    (`task_seed(master, key.mix())`), never from arrival order or a
//!    shared RNG, and
//! 2. deduplication and response assembly follow request order, so the
//!    first occurrence of a key is the "miss" and later duplicates are
//!    "coalesced" regardless of which worker finished first.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use qrc_circuit::qasm;
use qrc_predictor::{task_seed, BatchCompileRequest, CompilationOutcome, TrainedPredictor};
use rayon::prelude::*;

use crate::cache::{CacheKey, ResultCache};
use crate::protocol::{CacheStatus, CompiledResult, ServeRequest, ServeResponse};
use crate::registry::ModelRegistry;
use crate::shard::{ShardKey, ShardRoute};

/// How one request slot resolved during admission.
enum Slot {
    /// Rejected before reaching the scheduler (parse error, no shard
    /// for the objective, …).
    Failed(String),
    /// Admitted under a content address, routed to a shard.
    Keyed(CacheKey, ShardRoute),
}

/// One unique compilation job within a batch.
struct Job {
    key: CacheKey,
    circuit: qrc_circuit::QuantumCircuit,
    model: Arc<TrainedPredictor>,
}

/// One computed job's outcome: the rendered result (or pin-rejection
/// error) plus the latency attributed to it in microseconds.
type JobOutcome = (Result<Arc<CompiledResult>, String>, u64);

/// The resolution of one unique key within a batch.
enum Resolution {
    /// Found in the result cache before computing.
    CachedHit(Arc<CompiledResult>),
    /// Computed by this batch (latency in microseconds).
    Computed(JobOutcome),
}

/// How the scheduler computes cache misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferenceMode {
    /// One f64 policy forward per rollout step per job — the legacy
    /// matrix-vector path, kept as the reference implementation.
    F64Serial,
    /// Concurrent misses routed to the same model are stacked and each
    /// rollout tick runs **one** f64 matrix-matrix forward. Outcomes
    /// are bit-identical to [`InferenceMode::F64Serial`].
    F64Batched,
    /// Batched int8 inference, per-model gated by the predictor's
    /// equivalence check; a model whose gate fails serves its group on
    /// the bit-exact [`InferenceMode::F64Batched`] path instead.
    Int8Batched,
}

impl InferenceMode {
    /// Stable name used in metrics and bench reports.
    pub const fn name(self) -> &'static str {
        match self {
            InferenceMode::F64Serial => "f64_serial",
            InferenceMode::F64Batched => "f64_batched",
            InferenceMode::Int8Batched => "int8_batched",
        }
    }
}

/// How many unique misses each inference mode actually computed — the
/// *effective* mode per model group, so an int8 request falling back to
/// f64 (gate failure) is visible as f64 traffic, not mislabeled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissModeCounts {
    /// Misses computed one forward at a time in f64.
    pub f64_serial: u64,
    /// Misses computed by batched f64 inference.
    pub f64_batched: u64,
    /// Misses computed by batched int8 inference.
    pub int8_batched: u64,
}

impl MissModeCounts {
    fn add(&mut self, mode: InferenceMode, count: u64) {
        match mode {
            InferenceMode::F64Serial => self.f64_serial += count,
            InferenceMode::F64Batched => self.f64_batched += count,
            InferenceMode::Int8Batched => self.int8_batched += count,
        }
    }
}

/// Per-response stage durations, aligned with
/// [`BatchReport::responses`]: the slices of one request's `micros`
/// that the observability layer attributes to pipeline stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResponseStages {
    /// Admission work this request paid itself: QASM parse, content
    /// hash, cache lookup.
    pub admission_us: u64,
    /// Rollout compute, attributed to the one `miss` response that
    /// owns it (0 for hits, coalesced duplicates, and rejections).
    pub compute_us: u64,
}

/// One batch's responses plus its execution accounting.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-request responses, in request order.
    pub responses: Vec<ServeResponse>,
    /// Per-response stage durations, in request order.
    pub stages: Vec<ResponseStages>,
    /// Unique misses computed, by effective inference mode (failed
    /// computes — e.g. infeasible pins — are counted too: the rollout
    /// engine still ran for them).
    pub miss_modes: MissModeCounts,
}

/// Admission-time limits and execution mode of one scheduled batch.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Fan cache misses across the rayon pool.
    pub parallel: bool,
    /// Reject circuits wider than this many qubits at admission
    /// (`u32::MAX` disables the limit).
    pub max_qubits: u32,
    /// How misses run: serial reference path, batched f64, or
    /// gate-checked batched int8.
    pub inference: InferenceMode,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            parallel: true,
            max_qubits: u32::MAX,
            inference: InferenceMode::F64Batched,
        }
    }
}

/// Runs one batch of requests to completion (no per-request queue
/// delays, no admission limits). See [`run_batch_with`].
pub fn run_batch(
    registry: &ModelRegistry,
    cache: &ResultCache,
    master_seed: u64,
    parallel: bool,
    requests: &[ServeRequest],
) -> Vec<ServeResponse> {
    let options = BatchOptions {
        parallel,
        ..BatchOptions::default()
    };
    run_batch_with(registry, cache, master_seed, &options, requests, None)
}

/// Runs one batch of requests to completion.
///
/// Identical jobs (same circuit content, objective, and device pin)
/// are computed once; cache misses fan out across the rayon pool when
/// `options.parallel` is set. The returned responses are byte-identical
/// (save the latency field) between `parallel = true` and `false`.
///
/// `queue_waits_us`, when present, carries each request's time spent in
/// the front-end queue before this batch was scheduled; it is folded
/// into the reported latency.
///
/// # Latency accounting
///
/// Each response's `micros` is that request's *own* cost: queue wait +
/// its admission work (QASM parse, content hashing, cache lookup) +,
/// only for the one request that owns the compute (the `miss`), the
/// policy rollout. Coalesced duplicates and cache hits do **not**
/// re-report the miss's compute time — a batch of N duplicates adds the
/// rollout to the latency ledger once, not N times.
pub fn run_batch_with(
    registry: &ModelRegistry,
    cache: &ResultCache,
    master_seed: u64,
    options: &BatchOptions,
    requests: &[ServeRequest],
    queue_waits_us: Option<&[u64]>,
) -> Vec<ServeResponse> {
    run_batch_reported(
        registry,
        cache,
        master_seed,
        options,
        requests,
        queue_waits_us,
    )
    .responses
}

/// Like [`run_batch_with`], additionally reporting how many unique
/// misses each inference mode computed (for the service's per-mode
/// counters).
pub fn run_batch_reported(
    registry: &ModelRegistry,
    cache: &ResultCache,
    master_seed: u64,
    options: &BatchOptions,
    requests: &[ServeRequest],
    queue_waits_us: Option<&[u64]>,
) -> BatchReport {
    if let Some(waits) = queue_waits_us {
        assert_eq!(waits.len(), requests.len(), "one queue wait per request");
    }
    // Admission: resolve content addresses, deduplicate in request
    // order, and consult the cache once per unique key. Each request's
    // admission work is timed individually — it is real per-request
    // cost (parse + hash + lookup) and the only cost a duplicate pays.
    let mut slots: Vec<Slot> = Vec::with_capacity(requests.len());
    let mut admission_us: Vec<u64> = Vec::with_capacity(requests.len());
    let mut order: HashMap<CacheKey, usize> = HashMap::new();
    let mut resolutions: Vec<Option<Resolution>> = Vec::new();
    let mut jobs: Vec<Job> = Vec::new();
    let mut job_targets: Vec<usize> = Vec::new();

    for request in requests {
        let admission_start = Instant::now();
        let admitted = admit(registry, request, options.max_qubits);
        match admitted {
            Err(message) => slots.push(Slot::Failed(message)),
            Ok((key, route, circuit, model)) => {
                if let std::collections::hash_map::Entry::Vacant(slot) = order.entry(key) {
                    let index = resolutions.len();
                    slot.insert(index);
                    match cache.get(&key) {
                        Some(found) => resolutions.push(Some(Resolution::CachedHit(found))),
                        None => {
                            resolutions.push(None);
                            job_targets.push(index);
                            jobs.push(Job {
                                key,
                                circuit,
                                model,
                            });
                        }
                    }
                }
                slots.push(Slot::Keyed(key, route));
            }
        }
        admission_us.push(admission_start.elapsed().as_micros() as u64);
    }

    // Execution: serial reference path runs each job's own rollout;
    // the batched modes stack each model's jobs into lockstep rollouts
    // (one matrix-matrix policy forward per tick) and fan *model
    // groups* across the pool.
    let mut miss_modes = MissModeCounts::default();
    let outcomes: Vec<JobOutcome> = match options.inference {
        InferenceMode::F64Serial => {
            miss_modes.add(InferenceMode::F64Serial, jobs.len() as u64);
            let compute = |job: &Job| -> JobOutcome {
                let start = Instant::now();
                let result = execute(job, master_seed);
                (result.map(Arc::new), start.elapsed().as_micros() as u64)
            };
            if options.parallel {
                jobs.par_iter().map(compute).collect()
            } else {
                jobs.iter().map(compute).collect()
            }
        }
        mode => execute_grouped(&jobs, master_seed, mode, options.parallel, &mut miss_modes),
    };

    // Publication: successful results enter the cache for future
    // batches.
    for (i, (job, (outcome, micros))) in jobs.iter().zip(outcomes).enumerate() {
        if let Ok(result) = &outcome {
            cache.insert(job.key, Arc::clone(result));
        }
        resolutions[job_targets[i]] = Some(Resolution::Computed((outcome, micros)));
    }

    // Assembly, in request order: the first slot carrying a computed
    // key is the miss; later duplicates coalesce.
    let mut miss_claimed: std::collections::HashSet<CacheKey> = std::collections::HashSet::new();
    let mut responses: Vec<ServeResponse> = Vec::with_capacity(requests.len());
    let mut stages: Vec<ResponseStages> = Vec::with_capacity(requests.len());
    for (i, (request, slot)) in requests.iter().zip(slots).enumerate() {
        // Clock-resolution floor: even a sub-microsecond admission
        // (tiny cached hit, instant rejection) reports 1µs — never
        // the `micros: 0` that dragged p50 toward zero.
        let own_us = (queue_waits_us.map_or(0, |w| w[i]) + admission_us[i]).max(1);
        let mut parts = ResponseStages {
            admission_us: admission_us[i],
            compute_us: 0,
        };
        let response = match slot {
            Slot::Failed(message) => ServeResponse {
                id: request.id.clone(),
                result: Err(message),
                micros: own_us,
                route: None,
                rid: None,
            },
            Slot::Keyed(key, route) => {
                let resolution = resolutions[order[&key]]
                    .as_ref()
                    .expect("every admitted key resolves");
                let (result, status, micros) = match resolution {
                    Resolution::CachedHit(found) => {
                        (Ok(Arc::clone(found)), CacheStatus::Hit, own_us)
                    }
                    Resolution::Computed((outcome, compute_us)) => {
                        let first = miss_claimed.insert(key);
                        // Only the miss carries the rollout's cost;
                        // duplicates coalescing onto it report just
                        // their own admission + queue time.
                        let (status, micros) = if first {
                            parts.compute_us = *compute_us;
                            (CacheStatus::Miss, own_us + *compute_us)
                        } else {
                            (CacheStatus::Coalesced, own_us)
                        };
                        match outcome {
                            Ok(found) => (Ok(Arc::clone(found)), status, micros),
                            Err(e) => (Err(e.clone()), status, micros),
                        }
                    }
                };
                ServeResponse {
                    id: request.id.clone(),
                    result: result.map(|r| (r, status)),
                    micros,
                    route: Some(route),
                    rid: None,
                }
            }
        };
        responses.push(response);
        stages.push(parts);
    }
    BatchReport {
        responses,
        stages,
        miss_modes,
    }
}

/// Runs the batched execution stage: jobs are grouped by the model that
/// serves them (in job order, so grouping is deterministic), each group
/// runs one lockstep batched rollout, and groups fan across the rayon
/// pool when `parallel` is set.
///
/// Latency attribution: a lockstep group's wall-clock is shared work —
/// each of its jobs reports the group's elapsed time divided by the
/// group size (floored at 1µs), so a batch's summed miss cost stays
/// comparable to the serial path's per-job timings instead of
/// N-counting the shared rollout.
fn execute_grouped(
    jobs: &[Job],
    master_seed: u64,
    mode: InferenceMode,
    parallel: bool,
    miss_modes: &mut MissModeCounts,
) -> Vec<JobOutcome> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut by_model: HashMap<*const TrainedPredictor, usize> = HashMap::new();
    for (i, job) in jobs.iter().enumerate() {
        let group = *by_model.entry(Arc::as_ptr(&job.model)).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[group].push(i);
    }
    let run_group = |indices: &Vec<usize>| -> (Vec<usize>, Vec<JobOutcome>, InferenceMode) {
        let model = &jobs[indices[0]].model;
        let items: Vec<BatchCompileRequest<'_>> = indices
            .iter()
            .map(|&i| {
                let job = &jobs[i];
                BatchCompileRequest {
                    circuit: &job.circuit,
                    pin: job.key.device_pin,
                    seed: task_seed(master_seed, job.key.mix()),
                }
            })
            .collect();
        let start = Instant::now();
        let (results, used_quantized) =
            model.compile_batch(&items, mode == InferenceMode::Int8Batched);
        let per_job_us = (start.elapsed().as_micros() as u64 / indices.len() as u64).max(1);
        let effective = if used_quantized {
            InferenceMode::Int8Batched
        } else {
            InferenceMode::F64Batched
        };
        let outcomes = indices
            .iter()
            .zip(results)
            .map(|(&i, result)| {
                let rendered = result
                    .map(|outcome| Arc::new(render(&outcome)))
                    .map_err(|e| {
                        let pin = jobs[i].key.device_pin.map_or("?", |p| p.name());
                        format!("pinned device `{pin}` rejected: {e}")
                    });
                (rendered, per_job_us)
            })
            .collect();
        (indices.clone(), outcomes, effective)
    };
    let finished: Vec<_> = if parallel {
        groups.par_iter().map(run_group).collect()
    } else {
        groups.iter().map(run_group).collect()
    };
    let mut out: Vec<Option<JobOutcome>> = jobs.iter().map(|_| None).collect();
    for (indices, outcomes, effective) in finished {
        miss_modes.add(effective, indices.len() as u64);
        for (i, outcome) in indices.into_iter().zip(outcomes) {
            out[i] = Some(outcome);
        }
    }
    out.into_iter()
        .map(|o| o.expect("every job computed"))
        .collect()
}

/// Renders a rollout outcome to the wire shape (shared by the serial
/// and batched execution paths so their bodies are byte-identical).
fn render(outcome: &CompilationOutcome) -> CompiledResult {
    CompiledResult {
        qasm: qasm::to_qasm(&outcome.circuit),
        device: outcome.device,
        actions: outcome.actions.iter().map(|a| a.name()).collect(),
        reward: outcome.reward,
    }
}

/// Validates one request far enough to give it a content address and a
/// route: the requested `(objective, device class, width band)` slice
/// resolves to the most specific registered shard via the fallback
/// chain. Routing is deterministic — a given request against a given
/// registry snapshot always lands on the same shard.
fn admit(
    registry: &ModelRegistry,
    request: &ServeRequest,
    max_qubits: u32,
) -> Result<
    (
        CacheKey,
        ShardRoute,
        qrc_circuit::QuantumCircuit,
        Arc<TrainedPredictor>,
    ),
    String,
> {
    let circuit = qasm::from_qasm(&request.qasm).map_err(|e| format!("invalid qasm: {e}"))?;
    if circuit.num_qubits() > max_qubits {
        return Err(format!(
            "circuit is {} qubits wide, exceeding the service limit of {max_qubits}",
            circuit.num_qubits()
        ));
    }
    let requested =
        ShardKey::for_request(request.objective, request.device_pin, circuit.num_qubits());
    let routed = registry.route(requested).ok_or_else(|| {
        format!(
            "no shard registered for `{}` (available: {})",
            requested.name(),
            registry
                .keys()
                .iter()
                .map(ShardKey::name)
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    let key = CacheKey {
        circuit_hash: circuit.structural_hash(),
        device_pin: request.device_pin,
        shard: routed.key,
        generation: routed.generation,
    };
    Ok((
        key,
        ShardRoute {
            shard: routed.key,
            level: routed.level,
        },
        circuit,
        routed.model,
    ))
}

/// Runs one unique job: content-seeded policy rollout, rendered back to
/// QASM.
fn execute(job: &Job, master_seed: u64) -> Result<CompiledResult, String> {
    let seed = task_seed(master_seed, job.key.mix());
    let outcome = job
        .model
        .compile_request(&job.circuit, job.key.device_pin, seed)
        .map_err(|e| {
            let pin = job.key.device_pin.map_or("?", |p| p.name());
            format!("pinned device `{pin}` rejected: {e}")
        })?;
    Ok(render(&outcome))
}

/// Convenience wrapper used by tests and the bench harness: admission
/// errors aside, returns only whether every response body matches
/// between a parallel and a serial execution of `requests`.
pub fn parallel_matches_serial(
    registry: &ModelRegistry,
    master_seed: u64,
    requests: &[ServeRequest],
    capacity: usize,
    shards: usize,
) -> bool {
    let serial_cache = ResultCache::new(capacity, shards);
    let parallel_cache = ResultCache::new(capacity, shards);
    let serial = run_batch(registry, &serial_cache, master_seed, false, requests);
    let parallel = run_batch(registry, &parallel_cache, master_seed, true, requests);
    serial.len() == parallel.len()
        && serial
            .iter()
            .zip(parallel.iter())
            .all(|(a, b)| a.body_value() == b.body_value())
}
