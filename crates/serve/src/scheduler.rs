//! The batch scheduler: request stream → deduplicated jobs → rayon
//! worker pool → responses, with results byte-identical to serial
//! execution.
//!
//! Determinism comes from two choices:
//!
//! 1. every job's seed derives from its *content address*
//!    (`task_seed(master, key.mix())`), never from arrival order or a
//!    shared RNG, and
//! 2. deduplication and response assembly follow request order, so the
//!    first occurrence of a key is the "miss" and later duplicates are
//!    "coalesced" regardless of which worker finished first.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use qrc_circuit::qasm;
use qrc_predictor::{task_seed, TrainedPredictor};
use rayon::prelude::*;

use crate::cache::{CacheKey, ResultCache};
use crate::protocol::{CacheStatus, CompiledResult, ServeRequest, ServeResponse};
use crate::registry::ModelRegistry;

/// How one request slot resolved during admission.
enum Slot {
    /// Rejected before reaching the scheduler (parse error, unknown
    /// model, …).
    Failed(String),
    /// Admitted under a content address.
    Keyed(CacheKey),
}

/// One unique compilation job within a batch.
struct Job {
    key: CacheKey,
    circuit: qrc_circuit::QuantumCircuit,
    model: Arc<TrainedPredictor>,
}

/// The resolution of one unique key within a batch.
enum Resolution {
    /// Found in the result cache before computing.
    CachedHit(Arc<CompiledResult>),
    /// Computed by this batch (latency in microseconds).
    Computed(Result<Arc<CompiledResult>, String>, u64),
}

/// Runs one batch of requests to completion.
///
/// Identical jobs (same circuit content, objective, and device pin)
/// are computed once; cache misses fan out across the rayon pool when
/// `parallel` is set. The returned responses are byte-identical (save
/// the latency field) between `parallel = true` and `false`.
pub fn run_batch(
    registry: &ModelRegistry,
    cache: &ResultCache,
    master_seed: u64,
    parallel: bool,
    requests: &[ServeRequest],
) -> Vec<ServeResponse> {
    // Admission: resolve content addresses, deduplicate in request
    // order, and consult the cache once per unique key.
    let mut slots: Vec<Slot> = Vec::with_capacity(requests.len());
    let mut order: HashMap<CacheKey, usize> = HashMap::new();
    let mut resolutions: Vec<Option<Resolution>> = Vec::new();
    let mut jobs: Vec<Job> = Vec::new();
    let mut job_targets: Vec<usize> = Vec::new();

    for request in requests {
        let admitted = admit(registry, request);
        match admitted {
            Err(message) => slots.push(Slot::Failed(message)),
            Ok((key, circuit, model)) => {
                if let std::collections::hash_map::Entry::Vacant(slot) = order.entry(key) {
                    let index = resolutions.len();
                    slot.insert(index);
                    match cache.get(&key) {
                        Some(found) => resolutions.push(Some(Resolution::CachedHit(found))),
                        None => {
                            resolutions.push(None);
                            job_targets.push(index);
                            jobs.push(Job {
                                key,
                                circuit,
                                model,
                            });
                        }
                    }
                }
                slots.push(Slot::Keyed(key));
            }
        }
    }

    // Execution: fan unique misses across the pool (or run serially).
    let compute = |job: &Job| -> (Result<Arc<CompiledResult>, String>, u64) {
        let start = Instant::now();
        let result = execute(job, master_seed);
        (result.map(Arc::new), start.elapsed().as_micros() as u64)
    };
    let outcomes: Vec<(Result<Arc<CompiledResult>, String>, u64)> = if parallel {
        jobs.par_iter().map(compute).collect()
    } else {
        jobs.iter().map(compute).collect()
    };

    // Publication: successful results enter the cache for future
    // batches.
    for (i, (job, (outcome, micros))) in jobs.iter().zip(outcomes).enumerate() {
        if let Ok(result) = &outcome {
            cache.insert(job.key, Arc::clone(result));
        }
        resolutions[job_targets[i]] = Some(Resolution::Computed(outcome, micros));
    }

    // Assembly, in request order: the first slot carrying a computed
    // key is the miss; later duplicates coalesce.
    let mut miss_claimed: std::collections::HashSet<CacheKey> = std::collections::HashSet::new();
    requests
        .iter()
        .zip(slots)
        .map(|(request, slot)| match slot {
            Slot::Failed(message) => ServeResponse {
                id: request.id.clone(),
                result: Err(message),
                micros: 0,
            },
            Slot::Keyed(key) => {
                let resolution = resolutions[order[&key]]
                    .as_ref()
                    .expect("every admitted key resolves");
                let (result, status, micros) = match resolution {
                    Resolution::CachedHit(found) => (Ok(Arc::clone(found)), CacheStatus::Hit, 0),
                    Resolution::Computed(outcome, micros) => {
                        let first = miss_claimed.insert(key);
                        let status = if first {
                            CacheStatus::Miss
                        } else {
                            CacheStatus::Coalesced
                        };
                        match outcome {
                            Ok(found) => (Ok(Arc::clone(found)), status, *micros),
                            Err(e) => (Err(e.clone()), status, *micros),
                        }
                    }
                };
                ServeResponse {
                    id: request.id.clone(),
                    result: result.map(|r| (r, status)),
                    micros,
                }
            }
        })
        .collect()
}

/// Validates one request far enough to give it a content address.
fn admit(
    registry: &ModelRegistry,
    request: &ServeRequest,
) -> Result<(CacheKey, qrc_circuit::QuantumCircuit, Arc<TrainedPredictor>), String> {
    let circuit = qasm::from_qasm(&request.qasm).map_err(|e| format!("invalid qasm: {e}"))?;
    let model = registry.get(request.objective).ok_or_else(|| {
        format!(
            "no model registered for objective `{}` (available: {})",
            request.objective.name(),
            registry
                .kinds()
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    let key = CacheKey {
        circuit_hash: circuit.structural_hash(),
        reward: request.objective,
        device_pin: request.device_pin,
    };
    Ok((key, circuit, model))
}

/// Runs one unique job: content-seeded policy rollout, rendered back to
/// QASM.
fn execute(job: &Job, master_seed: u64) -> Result<CompiledResult, String> {
    let seed = task_seed(master_seed, job.key.mix());
    let outcome = match job.key.device_pin {
        Some(pin) => job
            .model
            .compile_pinned(&job.circuit, pin, seed)
            .map_err(|e| format!("pinned device `{pin}` rejected: {e}", pin = pin.name()))?,
        None => job.model.compile_with_seed(&job.circuit, seed),
    };
    Ok(CompiledResult {
        qasm: qasm::to_qasm(&outcome.circuit),
        device: outcome.device,
        actions: outcome.actions.iter().map(|a| a.name()).collect(),
        reward: outcome.reward,
    })
}

/// Convenience wrapper used by tests and the bench harness: admission
/// errors aside, returns only whether every response body matches
/// between a parallel and a serial execution of `requests`.
pub fn parallel_matches_serial(
    registry: &ModelRegistry,
    master_seed: u64,
    requests: &[ServeRequest],
    capacity: usize,
    shards: usize,
) -> bool {
    let serial_cache = ResultCache::new(capacity, shards);
    let parallel_cache = ResultCache::new(capacity, shards);
    let serial = run_batch(registry, &serial_cache, master_seed, false, requests);
    let parallel = run_batch(registry, &parallel_cache, master_seed, true, requests);
    serial.len() == parallel.len()
        && serial
            .iter()
            .zip(parallel.iter())
            .all(|(a, b)| a.body_value() == b.body_value())
}
