//! Per-request and aggregate service metrics: request/error counters,
//! request-level cache outcomes, per-shard routing counters, and
//! latency percentiles.
//!
//! Latency percentiles are computed over a bounded ring of the most
//! recent [`LATENCY_WINDOW`] samples so a long-lived service holds
//! constant memory; counts and the mean cover the full lifetime.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde_json::Value;

use crate::cache::CacheStats;
use crate::protocol::CacheStatus;
use crate::scheduler::InferenceMode;
use crate::shard::{RouteLevel, ShardKey, ShardRoute};

/// Number of recent latency samples retained for percentile estimates.
pub const LATENCY_WINDOW: usize = 65_536;

/// Latency percentile over unsorted microsecond samples (nearest-rank;
/// 0 on empty input). `q` is in `[0, 1]`.
///
/// Uses `select_nth_unstable` (introselect) instead of a full sort:
/// every stats request computes percentiles over up to
/// [`LATENCY_WINDOW`] samples while holding the latency lock's cloned
/// window, so O(n) selection beats the old O(n log n) sort precisely
/// when the window is full — the steady state of a busy service.
pub fn percentile_us(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut scratch = samples.to_vec();
    let rank = ((q.clamp(0.0, 1.0) * scratch.len() as f64).ceil() as usize).max(1);
    let (_, nth, _) = scratch.select_nth_unstable(rank - 1);
    *nth
}

/// A bounded ring of the most recent latency samples.
#[derive(Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyRing {
    fn push(&mut self, micros: u64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(micros);
        } else {
            self.samples[self.next] = micros;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }
}

/// Per-shard routing counters: how many requests a shard answered and
/// how each was served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Requests routed to this shard.
    pub routed: u64,
    /// Of those, answered from the result cache.
    pub hits: u64,
    /// Of those, computed by a fresh policy rollout.
    pub misses: u64,
    /// Of those, coalesced onto an identical in-batch job.
    pub coalesced: u64,
    /// Of those, answered with an error after routing (e.g. an
    /// infeasible device pin).
    pub errors: u64,
}

/// One shard's counters paired with its name, for snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCounterSnapshot {
    /// Canonical shard name (`objective/device-class/width-band`).
    pub shard: String,
    /// The counters.
    pub counters: ShardCounters,
}

/// How many requests resolved at each step of the routing fallback
/// chain (exact → band-wildcard → device-wildcard → objective-only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCounts {
    /// Matched the exact `(objective, device class, width band)` shard.
    pub exact: u64,
    /// Fell back to the shard with the wildcard width band.
    pub band_wildcard: u64,
    /// Fell back to the shard with the wildcard device class.
    pub device_wildcard: u64,
    /// Fell back to the objective-only wildcard shard.
    pub objective_only: u64,
}

impl RouteCounts {
    /// The count for one fallback level.
    pub fn of(&self, level: RouteLevel) -> u64 {
        match level {
            RouteLevel::Exact => self.exact,
            RouteLevel::BandWildcard => self.band_wildcard,
            RouteLevel::DeviceWildcard => self.device_wildcard,
            RouteLevel::ObjectiveOnly => self.objective_only,
        }
    }

    fn slot(&mut self, level: RouteLevel) -> &mut u64 {
        match level {
            RouteLevel::Exact => &mut self.exact,
            RouteLevel::BandWildcard => &mut self.band_wildcard,
            RouteLevel::DeviceWildcard => &mut self.device_wildcard,
            RouteLevel::ObjectiveOnly => &mut self.objective_only,
        }
    }

    /// Renders the counts as a JSON object keyed by level name.
    pub fn to_value(&self) -> Value {
        Value::object(
            RouteLevel::ALL
                .into_iter()
                .map(|level| (level.name(), Value::from(self.of(level))))
                .collect(),
        )
    }
}

/// Live metric accumulators, shared across worker threads.
#[derive(Default)]
pub struct ServeMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    hit_responses: AtomicU64,
    miss_responses: AtomicU64,
    coalesced_responses: AtomicU64,
    misses_f64_serial: AtomicU64,
    misses_f64_batched: AtomicU64,
    misses_int8_batched: AtomicU64,
    latency_sum_us: AtomicU64,
    latencies: Mutex<LatencyRing>,
    routing: Mutex<Routing>,
}

/// Routing accumulators (one lock: routed requests update one shard's
/// counters plus one level counter together).
#[derive(Default)]
struct Routing {
    per_shard: HashMap<ShardKey, ShardCounters>,
    levels: RouteCounts,
}

impl ServeMetrics {
    /// A fresh, zeroed accumulator.
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Records one finished request: its wall-clock, how it was served
    /// (`None` = error response), and — when it got far enough to be
    /// routed — which shard answered it and at which fallback level.
    pub fn record(&self, micros: u64, status: Option<CacheStatus>, route: Option<&ShardRoute>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match status {
            None => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            Some(CacheStatus::Hit) => {
                self.hit_responses.fetch_add(1, Ordering::Relaxed);
            }
            Some(CacheStatus::Miss) => {
                self.miss_responses.fetch_add(1, Ordering::Relaxed);
            }
            Some(CacheStatus::Coalesced) => {
                self.coalesced_responses.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(route) = route {
            let mut routing = self.routing.lock().expect("metrics lock poisoned");
            let counters = routing.per_shard.entry(route.shard).or_default();
            counters.routed += 1;
            match status {
                None => counters.errors += 1,
                Some(CacheStatus::Hit) => counters.hits += 1,
                Some(CacheStatus::Miss) => counters.misses += 1,
                Some(CacheStatus::Coalesced) => counters.coalesced += 1,
            }
            *routing.levels.slot(route.level) += 1;
        }
        self.latency_sum_us.fetch_add(micros, Ordering::Relaxed);
        self.latencies
            .lock()
            .expect("metrics lock poisoned")
            .push(micros);
    }

    /// Records `count` cache misses computed under one inference mode.
    ///
    /// Counted per *mode actually used* — a batch that requested int8
    /// but fell back to f64 (equivalence gate failure) reports the f64
    /// mode, so these counters are evidence of what served traffic, not
    /// of what was asked for.
    pub fn record_miss_modes(&self, mode: InferenceMode, count: u64) {
        if count == 0 {
            return;
        }
        let slot = match mode {
            InferenceMode::F64Serial => &self.misses_f64_serial,
            InferenceMode::F64Batched => &self.misses_f64_batched,
            InferenceMode::Int8Batched => &self.misses_int8_batched,
        };
        slot.fetch_add(count, Ordering::Relaxed);
    }

    /// Records one back-pressure rejection (queue full). Rejections
    /// never reach the scheduler, so they are counted apart from
    /// `requests`/`errors` and excluded from the latency window — a
    /// flood of instant rejections must not drag p50 toward zero.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent snapshot combined with the cache's counters.
    pub fn snapshot(&self, cache: CacheStats) -> MetricsSnapshot {
        let window = self
            .latencies
            .lock()
            .expect("metrics lock poisoned")
            .samples
            .clone();
        let requests = self.requests.load(Ordering::Relaxed);
        let mean = if requests == 0 {
            0.0
        } else {
            self.latency_sum_us.load(Ordering::Relaxed) as f64 / requests as f64
        };
        let (shards, routes) = {
            let routing = self.routing.lock().expect("metrics lock poisoned");
            let mut shards: Vec<ShardCounterSnapshot> = routing
                .per_shard
                .iter()
                .map(|(key, counters)| ShardCounterSnapshot {
                    shard: key.name(),
                    counters: *counters,
                })
                .collect();
            shards.sort_by(|a, b| a.shard.cmp(&b.shard));
            (shards, routing.levels)
        };
        MetricsSnapshot {
            requests,
            errors: self.errors.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            hit_responses: self.hit_responses.load(Ordering::Relaxed),
            miss_responses: self.miss_responses.load(Ordering::Relaxed),
            coalesced_responses: self.coalesced_responses.load(Ordering::Relaxed),
            misses_f64_serial: self.misses_f64_serial.load(Ordering::Relaxed),
            misses_f64_batched: self.misses_f64_batched.load(Ordering::Relaxed),
            misses_int8_batched: self.misses_int8_batched.load(Ordering::Relaxed),
            cache,
            shards,
            routes,
            p50_us: percentile_us(&window, 0.50),
            p99_us: percentile_us(&window, 0.99),
            mean_us: mean,
        }
    }
}

/// A point-in-time view of the service's aggregate behavior.
///
/// Two layers of cache accounting coexist deliberately: `cache.*`
/// counts *unique lookups* against the store (duplicates coalesced
/// within a batch never reach it), while `*_responses` count how each
/// *request* was answered — the same split a client sees in the
/// per-response `cache` field.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests answered since start.
    pub requests: u64,
    /// Requests answered with `ok: false`.
    pub errors: u64,
    /// Requests rejected by queue back-pressure before scheduling
    /// (not included in `requests`).
    pub rejected: u64,
    /// Requests answered `"cache":"hit"`.
    pub hit_responses: u64,
    /// Requests answered `"cache":"miss"`.
    pub miss_responses: u64,
    /// Requests answered `"cache":"coalesced"`.
    pub coalesced_responses: u64,
    /// Misses computed one policy forward at a time in f64.
    pub misses_f64_serial: u64,
    /// Misses computed by batched f64 matrix-matrix inference.
    pub misses_f64_batched: u64,
    /// Misses computed by batched int8 (gate-checked) inference.
    pub misses_int8_batched: u64,
    /// Store-level counters (unique lookups, insertions, evictions).
    pub cache: CacheStats,
    /// Per-shard routing counters, sorted by shard name.
    pub shards: Vec<ShardCounterSnapshot>,
    /// Requests per routing fallback level.
    pub routes: RouteCounts,
    /// Median latency over the recent window (microseconds).
    pub p50_us: u64,
    /// 99th-percentile latency over the recent window (microseconds).
    pub p99_us: u64,
    /// Mean per-request latency over the full lifetime (microseconds).
    pub mean_us: f64,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object (the `--stats` output of
    /// the `qrc-serve` binary).
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("requests", Value::from(self.requests)),
            ("errors", Value::from(self.errors)),
            ("rejected", Value::from(self.rejected)),
            (
                "responses",
                Value::object(vec![
                    ("hit", Value::from(self.hit_responses)),
                    ("miss", Value::from(self.miss_responses)),
                    ("coalesced", Value::from(self.coalesced_responses)),
                ]),
            ),
            (
                "inference",
                Value::object(vec![
                    ("f64_serial", Value::from(self.misses_f64_serial)),
                    ("f64_batched", Value::from(self.misses_f64_batched)),
                    ("int8_batched", Value::from(self.misses_int8_batched)),
                ]),
            ),
            (
                "cache",
                Value::object(vec![
                    ("hits", Value::from(self.cache.hits)),
                    ("warm_hits", Value::from(self.cache.warm_hits)),
                    ("cold_hits", Value::from(self.cache.cold_hits())),
                    ("misses", Value::from(self.cache.misses)),
                    ("insertions", Value::from(self.cache.insertions)),
                    ("evictions", Value::from(self.cache.evictions)),
                    ("hit_rate", Value::from(self.cache.hit_rate())),
                ]),
            ),
            (
                "shards",
                Value::object(
                    self.shards
                        .iter()
                        .map(|s| {
                            (
                                s.shard.clone(),
                                Value::object(vec![
                                    ("routed", Value::from(s.counters.routed)),
                                    ("hit", Value::from(s.counters.hits)),
                                    ("miss", Value::from(s.counters.misses)),
                                    ("coalesced", Value::from(s.counters.coalesced)),
                                    ("errors", Value::from(s.counters.errors)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            ("routes", self.routes.to_value()),
            (
                "latency_us",
                Value::object(vec![
                    ("p50", Value::from(self.p50_us)),
                    ("p99", Value::from(self.p99_us)),
                    ("mean", Value::from(self.mean_us)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&xs, 0.50), 50);
        assert_eq!(percentile_us(&xs, 0.99), 99);
        assert_eq!(percentile_us(&xs, 1.0), 100);
        assert_eq!(percentile_us(&xs, 0.0), 1);
        assert_eq!(percentile_us(&[], 0.5), 0);
        assert_eq!(percentile_us(&[7], 0.99), 7);
        // Unsorted input is handled.
        assert_eq!(percentile_us(&[30, 10, 20], 0.5), 20);
    }

    #[test]
    fn percentile_selection_matches_sort_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(42);
        for len in [1usize, 2, 3, 10, 257, 1024] {
            let samples: Vec<u64> = (0..len).map(|_| rng.gen_range(0..10_000)).collect();
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * len as f64).ceil() as usize).max(1);
                assert_eq!(
                    percentile_us(&samples, q),
                    sorted[rank - 1],
                    "len {len}, q {q}"
                );
            }
        }
    }

    #[test]
    fn inference_mode_counters_accumulate_and_render() {
        let m = ServeMetrics::new();
        m.record_miss_modes(InferenceMode::F64Serial, 2);
        m.record_miss_modes(InferenceMode::F64Batched, 3);
        m.record_miss_modes(InferenceMode::Int8Batched, 5);
        m.record_miss_modes(InferenceMode::Int8Batched, 0); // no-op
        let snap = m.snapshot(CacheStats::default());
        assert_eq!(snap.misses_f64_serial, 2);
        assert_eq!(snap.misses_f64_batched, 3);
        assert_eq!(snap.misses_int8_batched, 5);
        let text = serde_json::to_string(&snap.to_value());
        assert!(text.contains("\"inference\""), "{text}");
        assert!(text.contains("\"f64_serial\":2"), "{text}");
        assert!(text.contains("\"f64_batched\":3"), "{text}");
        assert!(text.contains("\"int8_batched\":5"), "{text}");
    }

    #[test]
    fn snapshot_aggregates() {
        let m = ServeMetrics::new();
        m.record(100, Some(CacheStatus::Miss), None);
        m.record(200, Some(CacheStatus::Hit), None);
        m.record(300, None, None);
        let snap = m.snapshot(CacheStats {
            hits: 1,
            warm_hits: 1,
            misses: 2,
            insertions: 2,
            evictions: 0,
        });
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.hit_responses, 1);
        assert_eq!(snap.miss_responses, 1);
        assert_eq!(snap.coalesced_responses, 0);
        assert_eq!(snap.p50_us, 200);
        assert!((snap.mean_us - 200.0).abs() < 1e-9);
        let text = serde_json::to_string(&snap.to_value());
        assert!(text.contains("\"hit_rate\""), "{text}");
        assert!(text.contains("\"warm_hits\":1"), "{text}");
        assert!(text.contains("\"cold_hits\":0"), "{text}");
        assert!(text.contains("\"responses\""), "{text}");
        assert!(text.contains("\"p99\""), "{text}");
    }

    #[test]
    fn per_shard_and_route_counters_accumulate() {
        use qrc_predictor::RewardKind;

        let m = ServeMetrics::new();
        let wildcard = ShardKey::wildcard(RewardKind::ExpectedFidelity);
        let narrow = ShardKey {
            width_band: crate::shard::WidthBand::Narrow,
            ..wildcard
        };
        let exact = ShardRoute {
            shard: narrow,
            level: RouteLevel::Exact,
        };
        let fallback = ShardRoute {
            shard: wildcard,
            level: RouteLevel::ObjectiveOnly,
        };
        m.record(10, Some(CacheStatus::Miss), Some(&exact));
        m.record(5, Some(CacheStatus::Hit), Some(&exact));
        m.record(7, Some(CacheStatus::Coalesced), Some(&exact));
        m.record(9, None, Some(&fallback));
        m.record(3, None, None); // parse error: never routed

        let snap = m.snapshot(CacheStats::default());
        assert_eq!(snap.shards.len(), 2);
        let by_name = |name: &str| {
            snap.shards
                .iter()
                .find(|s| s.shard == name)
                .unwrap_or_else(|| panic!("no counters for {name}"))
                .counters
        };
        let narrow_counters = by_name("fidelity/any/narrow");
        assert_eq!(narrow_counters.routed, 3);
        assert_eq!(narrow_counters.misses, 1);
        assert_eq!(narrow_counters.hits, 1);
        assert_eq!(narrow_counters.coalesced, 1);
        assert_eq!(narrow_counters.errors, 0);
        let wildcard_counters = by_name("fidelity/any/any");
        assert_eq!(wildcard_counters.routed, 1);
        assert_eq!(wildcard_counters.errors, 1);
        assert_eq!(snap.routes.exact, 3);
        assert_eq!(snap.routes.objective_only, 1);
        assert_eq!(snap.routes.band_wildcard + snap.routes.device_wildcard, 0);
        // Routed totals never exceed requests (the parse error is
        // counted in requests but routed nowhere).
        let routed: u64 = snap.shards.iter().map(|s| s.counters.routed).sum();
        assert_eq!(routed, 4);
        assert_eq!(snap.requests, 5);

        let text = serde_json::to_string(&snap.to_value());
        assert!(text.contains("\"fidelity/any/narrow\""), "{text}");
        assert!(text.contains("\"routes\""), "{text}");
        assert!(text.contains("\"objective_only\""), "{text}");
    }

    #[test]
    fn rejections_are_counted_apart_from_requests_and_errors() {
        let m = ServeMetrics::new();
        m.record(50, Some(CacheStatus::Miss), None);
        m.record(10, None, None);
        m.record_rejected();
        m.record_rejected();
        let snap = m.snapshot(CacheStats::default());
        assert_eq!(snap.rejected, 2);
        assert_eq!(snap.requests, 2, "rejections are not requests");
        assert_eq!(snap.errors, 1, "rejections are not parse errors");
        // Rejections stay out of the latency window: the median sits
        // on the two recorded samples (10, 50), not dragged to 0.
        assert_eq!(snap.p50_us, 10);
        assert_eq!(snap.p99_us, 50);
        let text = serde_json::to_string(&snap.to_value());
        assert!(text.contains("\"rejected\""), "{text}");
    }

    #[test]
    fn latency_window_is_bounded() {
        let m = ServeMetrics::new();
        // Overfill the ring: memory stays bounded, recent samples win,
        // lifetime mean still covers everything.
        let total = LATENCY_WINDOW + 500;
        for i in 0..total {
            m.record(i as u64, Some(CacheStatus::Miss), None);
        }
        let snap = m.snapshot(CacheStats::default());
        assert_eq!(snap.requests, total as u64);
        // The window dropped the 500 oldest (smallest) samples, so the
        // windowed median sits above the naive all-time median.
        assert!(snap.p50_us > (total / 2) as u64);
        let ring_len = m.latencies.lock().unwrap().samples.len();
        assert_eq!(ring_len, LATENCY_WINDOW);
    }
}
