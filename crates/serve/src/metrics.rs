//! Per-request and aggregate service metrics: request/error counters,
//! request-level cache outcomes, and latency percentiles.
//!
//! Latency percentiles are computed over a bounded ring of the most
//! recent [`LATENCY_WINDOW`] samples so a long-lived service holds
//! constant memory; counts and the mean cover the full lifetime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde_json::Value;

use crate::cache::CacheStats;
use crate::protocol::CacheStatus;

/// Number of recent latency samples retained for percentile estimates.
pub const LATENCY_WINDOW: usize = 65_536;

/// Latency percentile over unsorted microsecond samples (nearest-rank;
/// 0 on empty input). `q` is in `[0, 1]`.
pub fn percentile_us(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// A bounded ring of the most recent latency samples.
#[derive(Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyRing {
    fn push(&mut self, micros: u64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(micros);
        } else {
            self.samples[self.next] = micros;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }
}

/// Live metric accumulators, shared across worker threads.
#[derive(Default)]
pub struct ServeMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    hit_responses: AtomicU64,
    miss_responses: AtomicU64,
    coalesced_responses: AtomicU64,
    latency_sum_us: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

impl ServeMetrics {
    /// A fresh, zeroed accumulator.
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Records one finished request: its wall-clock and how it was
    /// served (`None` = error response).
    pub fn record(&self, micros: u64, status: Option<CacheStatus>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match status {
            None => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            Some(CacheStatus::Hit) => {
                self.hit_responses.fetch_add(1, Ordering::Relaxed);
            }
            Some(CacheStatus::Miss) => {
                self.miss_responses.fetch_add(1, Ordering::Relaxed);
            }
            Some(CacheStatus::Coalesced) => {
                self.coalesced_responses.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.latency_sum_us.fetch_add(micros, Ordering::Relaxed);
        self.latencies
            .lock()
            .expect("metrics lock poisoned")
            .push(micros);
    }

    /// Records one back-pressure rejection (queue full). Rejections
    /// never reach the scheduler, so they are counted apart from
    /// `requests`/`errors` and excluded from the latency window — a
    /// flood of instant rejections must not drag p50 toward zero.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent snapshot combined with the cache's counters.
    pub fn snapshot(&self, cache: CacheStats) -> MetricsSnapshot {
        let window = self
            .latencies
            .lock()
            .expect("metrics lock poisoned")
            .samples
            .clone();
        let requests = self.requests.load(Ordering::Relaxed);
        let mean = if requests == 0 {
            0.0
        } else {
            self.latency_sum_us.load(Ordering::Relaxed) as f64 / requests as f64
        };
        MetricsSnapshot {
            requests,
            errors: self.errors.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            hit_responses: self.hit_responses.load(Ordering::Relaxed),
            miss_responses: self.miss_responses.load(Ordering::Relaxed),
            coalesced_responses: self.coalesced_responses.load(Ordering::Relaxed),
            cache,
            p50_us: percentile_us(&window, 0.50),
            p99_us: percentile_us(&window, 0.99),
            mean_us: mean,
        }
    }
}

/// A point-in-time view of the service's aggregate behavior.
///
/// Two layers of cache accounting coexist deliberately: `cache.*`
/// counts *unique lookups* against the store (duplicates coalesced
/// within a batch never reach it), while `*_responses` count how each
/// *request* was answered — the same split a client sees in the
/// per-response `cache` field.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests answered since start.
    pub requests: u64,
    /// Requests answered with `ok: false`.
    pub errors: u64,
    /// Requests rejected by queue back-pressure before scheduling
    /// (not included in `requests`).
    pub rejected: u64,
    /// Requests answered `"cache":"hit"`.
    pub hit_responses: u64,
    /// Requests answered `"cache":"miss"`.
    pub miss_responses: u64,
    /// Requests answered `"cache":"coalesced"`.
    pub coalesced_responses: u64,
    /// Store-level counters (unique lookups, insertions, evictions).
    pub cache: CacheStats,
    /// Median latency over the recent window (microseconds).
    pub p50_us: u64,
    /// 99th-percentile latency over the recent window (microseconds).
    pub p99_us: u64,
    /// Mean per-request latency over the full lifetime (microseconds).
    pub mean_us: f64,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object (the `--stats` output of
    /// the `qrc-serve` binary).
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("requests", Value::from(self.requests)),
            ("errors", Value::from(self.errors)),
            ("rejected", Value::from(self.rejected)),
            (
                "responses",
                Value::object(vec![
                    ("hit", Value::from(self.hit_responses)),
                    ("miss", Value::from(self.miss_responses)),
                    ("coalesced", Value::from(self.coalesced_responses)),
                ]),
            ),
            (
                "cache",
                Value::object(vec![
                    ("hits", Value::from(self.cache.hits)),
                    ("misses", Value::from(self.cache.misses)),
                    ("insertions", Value::from(self.cache.insertions)),
                    ("evictions", Value::from(self.cache.evictions)),
                    ("hit_rate", Value::from(self.cache.hit_rate())),
                ]),
            ),
            (
                "latency_us",
                Value::object(vec![
                    ("p50", Value::from(self.p50_us)),
                    ("p99", Value::from(self.p99_us)),
                    ("mean", Value::from(self.mean_us)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&xs, 0.50), 50);
        assert_eq!(percentile_us(&xs, 0.99), 99);
        assert_eq!(percentile_us(&xs, 1.0), 100);
        assert_eq!(percentile_us(&xs, 0.0), 1);
        assert_eq!(percentile_us(&[], 0.5), 0);
        assert_eq!(percentile_us(&[7], 0.99), 7);
        // Unsorted input is handled.
        assert_eq!(percentile_us(&[30, 10, 20], 0.5), 20);
    }

    #[test]
    fn snapshot_aggregates() {
        let m = ServeMetrics::new();
        m.record(100, Some(CacheStatus::Miss));
        m.record(200, Some(CacheStatus::Hit));
        m.record(300, None);
        let snap = m.snapshot(CacheStats {
            hits: 1,
            misses: 2,
            insertions: 2,
            evictions: 0,
        });
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.hit_responses, 1);
        assert_eq!(snap.miss_responses, 1);
        assert_eq!(snap.coalesced_responses, 0);
        assert_eq!(snap.p50_us, 200);
        assert!((snap.mean_us - 200.0).abs() < 1e-9);
        let text = serde_json::to_string(&snap.to_value());
        assert!(text.contains("\"hit_rate\""), "{text}");
        assert!(text.contains("\"responses\""), "{text}");
        assert!(text.contains("\"p99\""), "{text}");
    }

    #[test]
    fn rejections_are_counted_apart_from_requests_and_errors() {
        let m = ServeMetrics::new();
        m.record(50, Some(CacheStatus::Miss));
        m.record(10, None);
        m.record_rejected();
        m.record_rejected();
        let snap = m.snapshot(CacheStats::default());
        assert_eq!(snap.rejected, 2);
        assert_eq!(snap.requests, 2, "rejections are not requests");
        assert_eq!(snap.errors, 1, "rejections are not parse errors");
        // Rejections stay out of the latency window: the median sits
        // on the two recorded samples (10, 50), not dragged to 0.
        assert_eq!(snap.p50_us, 10);
        assert_eq!(snap.p99_us, 50);
        let text = serde_json::to_string(&snap.to_value());
        assert!(text.contains("\"rejected\""), "{text}");
    }

    #[test]
    fn latency_window_is_bounded() {
        let m = ServeMetrics::new();
        // Overfill the ring: memory stays bounded, recent samples win,
        // lifetime mean still covers everything.
        let total = LATENCY_WINDOW + 500;
        for i in 0..total {
            m.record(i as u64, Some(CacheStatus::Miss));
        }
        let snap = m.snapshot(CacheStats::default());
        assert_eq!(snap.requests, total as u64);
        // The window dropped the 500 oldest (smallest) samples, so the
        // windowed median sits above the naive all-time median.
        assert!(snap.p50_us > (total / 2) as u64);
        let ring_len = m.latencies.lock().unwrap().samples.len();
        assert_eq!(ring_len, LATENCY_WINDOW);
    }
}
