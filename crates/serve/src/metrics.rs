//! Per-request and aggregate service metrics: request/error counters,
//! request-level cache outcomes, per-shard routing counters, latency
//! and per-stage duration histograms, and Prometheus text exposition.
//!
//! Latency and stage durations are recorded into log-bucketed
//! [`qrc_obs::AtomicHistogram`]s — constant memory (~15 KiB per
//! histogram) over the full service lifetime, wait-free recording, and
//! quantiles with bounded relative error
//! ([`qrc_obs::HISTOGRAM_RELATIVE_ERROR`], ≈ 3.2%). This replaces the
//! earlier 65k-sample ring that cloned the whole window under a lock
//! on every stats request.
//!
//! The stage histograms decompose a request's wall-clock into the
//! pipeline's phases (see [`Stage`]); the per-pass and per-tick
//! compute histograms live in the process-global
//! [`qrc_obs::profile`] because they are recorded from rayon worker
//! threads, and are folded into the Prometheus rendering here.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use serde_json::Value;

use qrc_obs::{AtomicHistogram, Histogram, PromText};

use crate::cache::CacheStats;
use crate::protocol::CacheStatus;
use crate::scheduler::InferenceMode;
use crate::shard::{RouteLevel, ShardKey, ShardRoute};

/// Latency percentile over unsorted microsecond samples (nearest-rank;
/// 0 on empty input). `q` is in `[0, 1]`.
///
/// Uses `select_nth_unstable` (introselect) instead of a full sort.
/// Live metrics now use histograms; this exact-selection helper
/// remains for benchmark reports and as the oracle histogram quantiles
/// are tested against.
pub fn percentile_us(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut scratch = samples.to_vec();
    let rank = ((q.clamp(0.0, 1.0) * scratch.len() as f64).ceil() as usize).max(1);
    let (_, nth, _) = scratch.select_nth_unstable(rank - 1);
    *nth
}

/// The instrumented phases of a request's journey through the service.
///
/// `QueueWait` through `Compute` are disjoint slices of one request's
/// wall-clock; `BatchAssembly` is per *batch* (the scheduler's wait for
/// stragglers after the first request of a batch arrived).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Time between arrival and being drained from the bounded queue.
    QueueWait,
    /// JSON line parsing in the service front end.
    Parse,
    /// Scheduler admission: QASM parse, structural hash, cache lookup.
    Admission,
    /// The queue's wait for additional requests after the first of a
    /// batch arrived (per batch, not per request).
    BatchAssembly,
    /// Policy rollout compute for a cache miss (per unique job).
    Compute,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::QueueWait,
        Stage::Parse,
        Stage::Admission,
        Stage::BatchAssembly,
        Stage::Compute,
    ];

    /// Stable label used in Prometheus series and the stats JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Parse => "parse",
            Stage::Admission => "admission",
            Stage::BatchAssembly => "batch_assembly",
            Stage::Compute => "compute",
        }
    }
}

/// Per-shard routing counters: how many requests a shard answered and
/// how each was served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Requests routed to this shard.
    pub routed: u64,
    /// Of those, answered from the result cache.
    pub hits: u64,
    /// Of those, computed by a fresh policy rollout.
    pub misses: u64,
    /// Of those, coalesced onto an identical in-batch job.
    pub coalesced: u64,
    /// Of those, answered with an error after routing (e.g. an
    /// infeasible device pin).
    pub errors: u64,
}

/// One shard's counters paired with its name, for snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCounterSnapshot {
    /// Canonical shard name (`objective/device-class/width-band`).
    pub shard: String,
    /// The counters.
    pub counters: ShardCounters,
}

/// How many requests resolved at each step of the routing fallback
/// chain (exact → band-wildcard → device-wildcard → objective-only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCounts {
    /// Matched the exact `(objective, device class, width band)` shard.
    pub exact: u64,
    /// Fell back to the shard with the wildcard width band.
    pub band_wildcard: u64,
    /// Fell back to the shard with the wildcard device class.
    pub device_wildcard: u64,
    /// Fell back to the objective-only wildcard shard.
    pub objective_only: u64,
}

impl RouteCounts {
    /// The count for one fallback level.
    pub fn of(&self, level: RouteLevel) -> u64 {
        match level {
            RouteLevel::Exact => self.exact,
            RouteLevel::BandWildcard => self.band_wildcard,
            RouteLevel::DeviceWildcard => self.device_wildcard,
            RouteLevel::ObjectiveOnly => self.objective_only,
        }
    }

    fn slot(&mut self, level: RouteLevel) -> &mut u64 {
        match level {
            RouteLevel::Exact => &mut self.exact,
            RouteLevel::BandWildcard => &mut self.band_wildcard,
            RouteLevel::DeviceWildcard => &mut self.device_wildcard,
            RouteLevel::ObjectiveOnly => &mut self.objective_only,
        }
    }

    /// Renders the counts as a JSON object keyed by level name.
    pub fn to_value(&self) -> Value {
        Value::object(
            RouteLevel::ALL
                .into_iter()
                .map(|level| (level.name(), Value::from(self.of(level))))
                .collect(),
        )
    }
}

/// Live metric accumulators, shared across worker threads.
pub struct ServeMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    hit_responses: AtomicU64,
    miss_responses: AtomicU64,
    coalesced_responses: AtomicU64,
    misses_f64_serial: AtomicU64,
    misses_f64_batched: AtomicU64,
    misses_int8_batched: AtomicU64,
    latency: AtomicHistogram,
    stages: [AtomicHistogram; Stage::ALL.len()],
    routing: Mutex<Routing>,
    started: Instant,
    started_epoch_secs: u64,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            hit_responses: AtomicU64::new(0),
            miss_responses: AtomicU64::new(0),
            coalesced_responses: AtomicU64::new(0),
            misses_f64_serial: AtomicU64::new(0),
            misses_f64_batched: AtomicU64::new(0),
            misses_int8_batched: AtomicU64::new(0),
            latency: AtomicHistogram::new(),
            stages: std::array::from_fn(|_| AtomicHistogram::new()),
            routing: Mutex::new(Routing::default()),
            started: Instant::now(),
            started_epoch_secs: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        }
    }
}

/// Routing accumulators (one lock: routed requests update one shard's
/// counters plus one level counter together).
#[derive(Default)]
struct Routing {
    per_shard: HashMap<ShardKey, ShardCounters>,
    levels: RouteCounts,
}

impl ServeMetrics {
    /// A fresh, zeroed accumulator (uptime starts now).
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Records one finished request: its wall-clock, how it was served
    /// (`None` = error response), and — when it got far enough to be
    /// routed — which shard answered it and at which fallback level.
    pub fn record(&self, micros: u64, status: Option<CacheStatus>, route: Option<&ShardRoute>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match status {
            None => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            Some(CacheStatus::Hit) => {
                self.hit_responses.fetch_add(1, Ordering::Relaxed);
            }
            Some(CacheStatus::Miss) => {
                self.miss_responses.fetch_add(1, Ordering::Relaxed);
            }
            Some(CacheStatus::Coalesced) => {
                self.coalesced_responses.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(route) = route {
            let mut routing = self.routing.lock().expect("metrics lock poisoned");
            let counters = routing.per_shard.entry(route.shard).or_default();
            counters.routed += 1;
            match status {
                None => counters.errors += 1,
                Some(CacheStatus::Hit) => counters.hits += 1,
                Some(CacheStatus::Miss) => counters.misses += 1,
                Some(CacheStatus::Coalesced) => counters.coalesced += 1,
            }
            *routing.levels.slot(route.level) += 1;
        }
        self.latency.record(micros);
    }

    /// Records one observation of a pipeline stage's duration.
    pub fn record_stage(&self, stage: Stage, micros: u64) {
        let slot = Stage::ALL
            .iter()
            .position(|s| *s == stage)
            .expect("stage is in ALL");
        self.stages[slot].record(micros);
    }

    /// A point-in-time copy of one stage's histogram.
    pub fn stage_histogram(&self, stage: Stage) -> Histogram {
        let slot = Stage::ALL
            .iter()
            .position(|s| *s == stage)
            .expect("stage is in ALL");
        self.stages[slot].snapshot()
    }

    /// Records `count` cache misses computed under one inference mode.
    ///
    /// Counted per *mode actually used* — a batch that requested int8
    /// but fell back to f64 (equivalence gate failure) reports the f64
    /// mode, so these counters are evidence of what served traffic, not
    /// of what was asked for.
    pub fn record_miss_modes(&self, mode: InferenceMode, count: u64) {
        if count == 0 {
            return;
        }
        let slot = match mode {
            InferenceMode::F64Serial => &self.misses_f64_serial,
            InferenceMode::F64Batched => &self.misses_f64_batched,
            InferenceMode::Int8Batched => &self.misses_int8_batched,
        };
        slot.fetch_add(count, Ordering::Relaxed);
    }

    /// Records one back-pressure rejection (queue full). Rejections
    /// never reach the scheduler, so they are counted apart from
    /// `requests`/`errors` and excluded from the latency histogram — a
    /// flood of instant rejections must not drag p50 toward zero.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Seconds since this accumulator was created (service start).
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Microseconds since service start — the zero point of the trace
    /// timeline, so span timestamps from different threads share one
    /// monotonic epoch.
    pub fn uptime_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// A consistent snapshot combined with the cache's counters.
    pub fn snapshot(&self, cache: CacheStats) -> MetricsSnapshot {
        let latency = self.latency.snapshot();
        let (shards, routes) = {
            let routing = self.routing.lock().expect("metrics lock poisoned");
            let mut shards: Vec<ShardCounterSnapshot> = routing
                .per_shard
                .iter()
                .map(|(key, counters)| ShardCounterSnapshot {
                    shard: key.name(),
                    counters: *counters,
                })
                .collect();
            shards.sort_by(|a, b| a.shard.cmp(&b.shard));
            (shards, routing.levels)
        };
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            hit_responses: self.hit_responses.load(Ordering::Relaxed),
            miss_responses: self.miss_responses.load(Ordering::Relaxed),
            coalesced_responses: self.coalesced_responses.load(Ordering::Relaxed),
            misses_f64_serial: self.misses_f64_serial.load(Ordering::Relaxed),
            misses_f64_batched: self.misses_f64_batched.load(Ordering::Relaxed),
            misses_int8_batched: self.misses_int8_batched.load(Ordering::Relaxed),
            cache,
            shards,
            routes,
            p50_us: latency.quantile(0.50),
            p99_us: latency.quantile(0.99),
            p999_us: latency.quantile(0.999),
            min_us: latency.min(),
            max_us: latency.max(),
            mean_us: latency.mean(),
            uptime_secs: self.uptime_secs(),
            started_epoch_secs: self.started_epoch_secs,
        }
    }

    /// Renders every counter and histogram as a Prometheus text-format
    /// (0.0.4) document: service counters, cache and shard-routing
    /// counters, the end-to-end latency histogram, per-stage duration
    /// histograms, and the global profiler's per-pass / per-tick /
    /// per-section compute histograms. `queue_depth` is the live
    /// bounded-queue occupancy when a front end exposes one.
    pub fn render_prometheus(&self, cache: &CacheStats, queue_depth: Option<u64>) -> String {
        let bounds = qrc_obs::power_of_two_bounds(26);
        let mut p = PromText::new();

        p.header(
            "qrc_uptime_seconds",
            "gauge",
            "Seconds since service start.",
        );
        p.sample_f64("qrc_uptime_seconds", &[], self.uptime_secs());
        p.header(
            "qrc_start_time_seconds",
            "gauge",
            "Unix timestamp of service start.",
        );
        p.sample_u64("qrc_start_time_seconds", &[], self.started_epoch_secs);
        if let Some(depth) = queue_depth {
            p.header(
                "qrc_queue_depth",
                "gauge",
                "Requests currently waiting in the bounded queue.",
            );
            p.sample_u64("qrc_queue_depth", &[], depth);
        }

        p.header("qrc_requests_total", "counter", "Requests answered.");
        p.sample_u64(
            "qrc_requests_total",
            &[],
            self.requests.load(Ordering::Relaxed),
        );
        p.header(
            "qrc_errors_total",
            "counter",
            "Requests answered with ok=false.",
        );
        p.sample_u64("qrc_errors_total", &[], self.errors.load(Ordering::Relaxed));
        p.header(
            "qrc_rejected_total",
            "counter",
            "Requests rejected by queue back-pressure.",
        );
        p.sample_u64(
            "qrc_rejected_total",
            &[],
            self.rejected.load(Ordering::Relaxed),
        );

        p.header(
            "qrc_responses_total",
            "counter",
            "Requests answered, by cache outcome.",
        );
        for (outcome, counter) in [
            ("hit", &self.hit_responses),
            ("miss", &self.miss_responses),
            ("coalesced", &self.coalesced_responses),
        ] {
            p.sample_u64(
                "qrc_responses_total",
                &[("cache", outcome)],
                counter.load(Ordering::Relaxed),
            );
        }

        p.header(
            "qrc_misses_total",
            "counter",
            "Cache misses computed, by inference mode actually used.",
        );
        for (mode, counter) in [
            (InferenceMode::F64Serial, &self.misses_f64_serial),
            (InferenceMode::F64Batched, &self.misses_f64_batched),
            (InferenceMode::Int8Batched, &self.misses_int8_batched),
        ] {
            p.sample_u64(
                "qrc_misses_total",
                &[("mode", mode.name())],
                counter.load(Ordering::Relaxed),
            );
        }

        p.header(
            "qrc_cache_lookups_total",
            "counter",
            "Unique store lookups, by result.",
        );
        p.sample_u64("qrc_cache_lookups_total", &[("result", "hit")], cache.hits);
        p.sample_u64(
            "qrc_cache_lookups_total",
            &[("result", "miss")],
            cache.misses,
        );
        p.header(
            "qrc_cache_warm_hits_total",
            "counter",
            "Cache hits served from warmup-restored entries.",
        );
        p.sample_u64("qrc_cache_warm_hits_total", &[], cache.warm_hits);
        p.header("qrc_cache_insertions_total", "counter", "Cache insertions.");
        p.sample_u64("qrc_cache_insertions_total", &[], cache.insertions);
        p.header("qrc_cache_evictions_total", "counter", "Cache evictions.");
        p.sample_u64("qrc_cache_evictions_total", &[], cache.evictions);

        let (shards, routes) = {
            let routing = self.routing.lock().expect("metrics lock poisoned");
            let mut shards: Vec<(String, ShardCounters)> = routing
                .per_shard
                .iter()
                .map(|(key, counters)| (key.name(), *counters))
                .collect();
            shards.sort_by(|a, b| a.0.cmp(&b.0));
            (shards, routing.levels)
        };
        p.header(
            "qrc_shard_requests_total",
            "counter",
            "Requests routed, by serving shard and outcome.",
        );
        for (name, counters) in &shards {
            for (outcome, count) in [
                ("hit", counters.hits),
                ("miss", counters.misses),
                ("coalesced", counters.coalesced),
                ("error", counters.errors),
            ] {
                p.sample_u64(
                    "qrc_shard_requests_total",
                    &[("shard", name.as_str()), ("outcome", outcome)],
                    count,
                );
            }
        }
        p.header(
            "qrc_route_level_total",
            "counter",
            "Requests resolved per routing fallback level.",
        );
        for level in RouteLevel::ALL {
            p.sample_u64(
                "qrc_route_level_total",
                &[("level", level.name())],
                routes.of(level),
            );
        }

        p.header(
            "qrc_request_duration_microseconds",
            "histogram",
            "End-to-end request latency.",
        );
        p.histogram(
            "qrc_request_duration_microseconds",
            &[],
            &self.latency.snapshot(),
            &bounds,
        );

        p.header(
            "qrc_stage_duration_microseconds",
            "histogram",
            "Pipeline stage durations (queue_wait, parse, admission, batch_assembly, compute).",
        );
        for (slot, stage) in Stage::ALL.iter().enumerate() {
            p.histogram(
                "qrc_stage_duration_microseconds",
                &[("stage", stage.name())],
                &self.stages[slot].snapshot(),
                &bounds,
            );
        }

        let profile = qrc_obs::profile::snapshot();
        p.header(
            "qrc_tick_duration_microseconds",
            "histogram",
            "Per-rollout-tick policy inference time.",
        );
        p.histogram(
            "qrc_tick_duration_microseconds",
            &[],
            &profile.ticks,
            &bounds,
        );
        p.header(
            "qrc_pass_duration_microseconds",
            "histogram",
            "Compilation pass apply time, by pass name.",
        );
        for (name, hist) in &profile.passes {
            p.histogram(
                "qrc_pass_duration_microseconds",
                &[("pass", name.as_str())],
                hist,
                &bounds,
            );
        }
        p.header(
            "qrc_section_duration_microseconds",
            "histogram",
            "Rollout compute sections (mask, observation, apply, reward).",
        );
        for (name, hist) in &profile.sections {
            p.histogram(
                "qrc_section_duration_microseconds",
                &[("section", name.as_str())],
                hist,
                &bounds,
            );
        }

        p.finish()
    }
}

/// A point-in-time view of the service's aggregate behavior.
///
/// Two layers of cache accounting coexist deliberately: `cache.*`
/// counts *unique lookups* against the store (duplicates coalesced
/// within a batch never reach it), while `*_responses` count how each
/// *request* was answered — the same split a client sees in the
/// per-response `cache` field.
///
/// Latency quantiles come from the lifetime log-bucketed histogram:
/// `min`/`max`/`mean` are exact, quantiles carry the histogram's
/// bounded relative error (≈ 3.2% high).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests answered since start.
    pub requests: u64,
    /// Requests answered with `ok: false`.
    pub errors: u64,
    /// Requests rejected by queue back-pressure before scheduling
    /// (not included in `requests`).
    pub rejected: u64,
    /// Requests answered `"cache":"hit"`.
    pub hit_responses: u64,
    /// Requests answered `"cache":"miss"`.
    pub miss_responses: u64,
    /// Requests answered `"cache":"coalesced"`.
    pub coalesced_responses: u64,
    /// Misses computed one policy forward at a time in f64.
    pub misses_f64_serial: u64,
    /// Misses computed by batched f64 matrix-matrix inference.
    pub misses_f64_batched: u64,
    /// Misses computed by batched int8 (gate-checked) inference.
    pub misses_int8_batched: u64,
    /// Store-level counters (unique lookups, insertions, evictions).
    pub cache: CacheStats,
    /// Per-shard routing counters, sorted by shard name.
    pub shards: Vec<ShardCounterSnapshot>,
    /// Requests per routing fallback level.
    pub routes: RouteCounts,
    /// Median latency (microseconds, bounded relative error).
    pub p50_us: u64,
    /// 99th-percentile latency (microseconds, bounded relative error).
    pub p99_us: u64,
    /// 99.9th-percentile latency (microseconds, bounded relative
    /// error).
    pub p999_us: u64,
    /// Exact minimum request latency (microseconds).
    pub min_us: u64,
    /// Exact maximum request latency (microseconds).
    pub max_us: u64,
    /// Mean per-request latency over the full lifetime (microseconds).
    pub mean_us: f64,
    /// Seconds since service start.
    pub uptime_secs: f64,
    /// Unix timestamp of service start (seconds).
    pub started_epoch_secs: u64,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object (the `--stats` output of
    /// the `qrc-serve` binary).
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("requests", Value::from(self.requests)),
            ("errors", Value::from(self.errors)),
            ("rejected", Value::from(self.rejected)),
            ("uptime_secs", Value::from(self.uptime_secs)),
            ("started_epoch_secs", Value::from(self.started_epoch_secs)),
            (
                "responses",
                Value::object(vec![
                    ("hit", Value::from(self.hit_responses)),
                    ("miss", Value::from(self.miss_responses)),
                    ("coalesced", Value::from(self.coalesced_responses)),
                ]),
            ),
            (
                "inference",
                Value::object(vec![
                    ("f64_serial", Value::from(self.misses_f64_serial)),
                    ("f64_batched", Value::from(self.misses_f64_batched)),
                    ("int8_batched", Value::from(self.misses_int8_batched)),
                ]),
            ),
            (
                "cache",
                Value::object(vec![
                    ("hits", Value::from(self.cache.hits)),
                    ("warm_hits", Value::from(self.cache.warm_hits)),
                    ("cold_hits", Value::from(self.cache.cold_hits())),
                    ("misses", Value::from(self.cache.misses)),
                    ("insertions", Value::from(self.cache.insertions)),
                    ("evictions", Value::from(self.cache.evictions)),
                    ("hit_rate", Value::from(self.cache.hit_rate())),
                ]),
            ),
            (
                "shards",
                Value::object(
                    self.shards
                        .iter()
                        .map(|s| {
                            (
                                s.shard.clone(),
                                Value::object(vec![
                                    ("routed", Value::from(s.counters.routed)),
                                    ("hit", Value::from(s.counters.hits)),
                                    ("miss", Value::from(s.counters.misses)),
                                    ("coalesced", Value::from(s.counters.coalesced)),
                                    ("errors", Value::from(s.counters.errors)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            ("routes", self.routes.to_value()),
            (
                "latency_us",
                Value::object(vec![
                    ("p50", Value::from(self.p50_us)),
                    ("p99", Value::from(self.p99_us)),
                    ("p999", Value::from(self.p999_us)),
                    ("min", Value::from(self.min_us)),
                    ("max", Value::from(self.max_us)),
                    ("mean", Value::from(self.mean_us)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrc_obs::HISTOGRAM_RELATIVE_ERROR;

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&xs, 0.50), 50);
        assert_eq!(percentile_us(&xs, 0.99), 99);
        assert_eq!(percentile_us(&xs, 1.0), 100);
        assert_eq!(percentile_us(&xs, 0.0), 1);
        assert_eq!(percentile_us(&[], 0.5), 0);
        assert_eq!(percentile_us(&[7], 0.99), 7);
        // Unsorted input is handled.
        assert_eq!(percentile_us(&[30, 10, 20], 0.5), 20);
    }

    #[test]
    fn percentile_selection_matches_sort_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(42);
        for len in [1usize, 2, 3, 10, 257, 1024] {
            let samples: Vec<u64> = (0..len).map(|_| rng.gen_range(0..10_000)).collect();
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * len as f64).ceil() as usize).max(1);
                assert_eq!(
                    percentile_us(&samples, q),
                    sorted[rank - 1],
                    "len {len}, q {q}"
                );
            }
        }
    }

    #[test]
    fn inference_mode_counters_accumulate_and_render() {
        let m = ServeMetrics::new();
        m.record_miss_modes(InferenceMode::F64Serial, 2);
        m.record_miss_modes(InferenceMode::F64Batched, 3);
        m.record_miss_modes(InferenceMode::Int8Batched, 5);
        m.record_miss_modes(InferenceMode::Int8Batched, 0); // no-op
        let snap = m.snapshot(CacheStats::default());
        assert_eq!(snap.misses_f64_serial, 2);
        assert_eq!(snap.misses_f64_batched, 3);
        assert_eq!(snap.misses_int8_batched, 5);
        let text = serde_json::to_string(&snap.to_value());
        assert!(text.contains("\"inference\""), "{text}");
        assert!(text.contains("\"f64_serial\":2"), "{text}");
        assert!(text.contains("\"f64_batched\":3"), "{text}");
        assert!(text.contains("\"int8_batched\":5"), "{text}");
    }

    #[test]
    fn snapshot_aggregates() {
        let m = ServeMetrics::new();
        m.record(100, Some(CacheStatus::Miss), None);
        m.record(200, Some(CacheStatus::Hit), None);
        m.record(300, None, None);
        let snap = m.snapshot(CacheStats {
            hits: 1,
            warm_hits: 1,
            misses: 2,
            insertions: 2,
            evictions: 0,
        });
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.hit_responses, 1);
        assert_eq!(snap.miss_responses, 1);
        assert_eq!(snap.coalesced_responses, 0);
        // Histogram quantiles overshoot by at most the bucket width.
        assert!(snap.p50_us >= 200);
        assert!((snap.p50_us as f64) <= 200.0 * (1.0 + HISTOGRAM_RELATIVE_ERROR));
        assert_eq!(snap.min_us, 100, "min is exact");
        assert_eq!(snap.max_us, 300, "max is exact");
        assert_eq!(snap.p999_us, 300, "p999 clamps to the exact max");
        assert!((snap.mean_us - 200.0).abs() < 1e-9);
        assert!(snap.uptime_secs >= 0.0);
        assert!(snap.started_epoch_secs > 0);
        let text = serde_json::to_string(&snap.to_value());
        assert!(text.contains("\"hit_rate\""), "{text}");
        assert!(text.contains("\"warm_hits\":1"), "{text}");
        assert!(text.contains("\"cold_hits\":0"), "{text}");
        assert!(text.contains("\"responses\""), "{text}");
        assert!(text.contains("\"p99\""), "{text}");
        assert!(text.contains("\"p999\""), "{text}");
        assert!(text.contains("\"min\""), "{text}");
        assert!(text.contains("\"max\""), "{text}");
        assert!(text.contains("\"uptime_secs\""), "{text}");
        assert!(text.contains("\"started_epoch_secs\""), "{text}");
    }

    #[test]
    fn per_shard_and_route_counters_accumulate() {
        use qrc_predictor::RewardKind;

        let m = ServeMetrics::new();
        let wildcard = ShardKey::wildcard(RewardKind::ExpectedFidelity);
        let narrow = ShardKey {
            width_band: crate::shard::WidthBand::Narrow,
            ..wildcard
        };
        let exact = ShardRoute {
            shard: narrow,
            level: RouteLevel::Exact,
        };
        let fallback = ShardRoute {
            shard: wildcard,
            level: RouteLevel::ObjectiveOnly,
        };
        m.record(10, Some(CacheStatus::Miss), Some(&exact));
        m.record(5, Some(CacheStatus::Hit), Some(&exact));
        m.record(7, Some(CacheStatus::Coalesced), Some(&exact));
        m.record(9, None, Some(&fallback));
        m.record(3, None, None); // parse error: never routed

        let snap = m.snapshot(CacheStats::default());
        assert_eq!(snap.shards.len(), 2);
        let by_name = |name: &str| {
            snap.shards
                .iter()
                .find(|s| s.shard == name)
                .unwrap_or_else(|| panic!("no counters for {name}"))
                .counters
        };
        let narrow_counters = by_name("fidelity/any/narrow");
        assert_eq!(narrow_counters.routed, 3);
        assert_eq!(narrow_counters.misses, 1);
        assert_eq!(narrow_counters.hits, 1);
        assert_eq!(narrow_counters.coalesced, 1);
        assert_eq!(narrow_counters.errors, 0);
        let wildcard_counters = by_name("fidelity/any/any");
        assert_eq!(wildcard_counters.routed, 1);
        assert_eq!(wildcard_counters.errors, 1);
        assert_eq!(snap.routes.exact, 3);
        assert_eq!(snap.routes.objective_only, 1);
        assert_eq!(snap.routes.band_wildcard + snap.routes.device_wildcard, 0);
        // Routed totals never exceed requests (the parse error is
        // counted in requests but routed nowhere).
        let routed: u64 = snap.shards.iter().map(|s| s.counters.routed).sum();
        assert_eq!(routed, 4);
        assert_eq!(snap.requests, 5);

        let text = serde_json::to_string(&snap.to_value());
        assert!(text.contains("\"fidelity/any/narrow\""), "{text}");
        assert!(text.contains("\"routes\""), "{text}");
        assert!(text.contains("\"objective_only\""), "{text}");
    }

    #[test]
    fn rejections_are_counted_apart_from_requests_and_errors() {
        let m = ServeMetrics::new();
        m.record(50, Some(CacheStatus::Miss), None);
        m.record(10, None, None);
        m.record_rejected();
        m.record_rejected();
        let snap = m.snapshot(CacheStats::default());
        assert_eq!(snap.rejected, 2);
        assert_eq!(snap.requests, 2, "rejections are not requests");
        assert_eq!(snap.errors, 1, "rejections are not parse errors");
        // Rejections stay out of the latency histogram: the median
        // sits on the two recorded samples (10, 50), not dragged to 0
        // (values below 2^5 land in exact single-value buckets).
        assert_eq!(snap.p50_us, 10);
        assert_eq!(snap.p99_us, 50);
        let text = serde_json::to_string(&snap.to_value());
        assert!(text.contains("\"rejected\""), "{text}");
    }

    #[test]
    fn latency_histogram_holds_lifetime_quantiles_in_bounded_memory() {
        let m = ServeMetrics::new();
        // Far more samples than the old 65k ring could hold: the
        // histogram's memory is fixed by its bucket count, and the
        // quantiles still cover the whole lifetime within the error
        // bound.
        let total = 200_000u64;
        for i in 1..=total {
            m.record(i, Some(CacheStatus::Miss), None);
        }
        let snap = m.snapshot(CacheStats::default());
        assert_eq!(snap.requests, total);
        assert_eq!(snap.min_us, 1);
        assert_eq!(snap.max_us, total);
        for (q, exact) in [(snap.p50_us, total / 2), (snap.p99_us, total * 99 / 100)] {
            assert!(q >= exact, "{q} < {exact}");
            assert!((q as f64) <= exact as f64 * (1.0 + HISTOGRAM_RELATIVE_ERROR));
        }
        assert!((snap.mean_us - (total + 1) as f64 / 2.0).abs() < 1.0);
    }

    #[test]
    fn stage_histograms_record_and_render() {
        let m = ServeMetrics::new();
        m.record_stage(Stage::QueueWait, 12);
        m.record_stage(Stage::Parse, 3);
        m.record_stage(Stage::Admission, 40);
        m.record_stage(Stage::BatchAssembly, 900);
        m.record_stage(Stage::Compute, 1500);
        m.record_stage(Stage::Compute, 2500);
        let compute = m.stage_histogram(Stage::Compute);
        assert_eq!(compute.count(), 2);
        assert_eq!(compute.sum(), 4000);
        assert_eq!(m.stage_histogram(Stage::Parse).max(), 3);

        m.record(100, Some(CacheStatus::Miss), None);
        let text = m.render_prometheus(&CacheStats::default(), Some(7));
        for series in [
            "qrc_requests_total 1",
            "qrc_responses_total{cache=\"miss\"} 1",
            "qrc_misses_total{mode=\"f64_serial\"}",
            "qrc_stage_duration_microseconds_bucket{stage=\"queue_wait\",le=\"16\"} 1",
            "qrc_stage_duration_microseconds_sum{stage=\"compute\"} 4000",
            "qrc_stage_duration_microseconds_count{stage=\"batch_assembly\"} 1",
            "qrc_request_duration_microseconds_count 1",
            "qrc_queue_depth 7",
            "qrc_uptime_seconds",
            "qrc_start_time_seconds",
            "qrc_tick_duration_microseconds",
            "qrc_pass_duration_microseconds",
            "qrc_route_level_total{level=\"exact\"} 0",
            "# TYPE qrc_stage_duration_microseconds histogram",
        ] {
            assert!(text.contains(series), "missing `{series}` in:\n{text}");
        }
        // Without a queue probe the gauge is absent entirely.
        let without = m.render_prometheus(&CacheStats::default(), None);
        assert!(!without.contains("qrc_queue_depth"));
    }
}
