//! A consistent-hash ring with virtual nodes: the routing core of the
//! `qrc-lb` fleet router.
//!
//! Each replica is inserted as `vnodes` points on a 64-bit ring, every
//! point the hash of `(replica label, vnode index)`. A request's
//! routing key — its circuit `structural_hash` mixed with the resolved
//! shard tag via [`mix_key`] — routes to the first point at or after
//! it (wrapping), so the key space is carved into arcs owned by
//! replicas. Virtual nodes keep the arcs statistically balanced, and
//! removing a replica hands exactly its arcs to their ring successors:
//! every other key keeps its owner (the minimal-disruption property
//! that makes per-replica caches worth warming).
//!
//! The ring is plain data — no I/O, no locking — so the router wraps
//! it in whatever synchronization its health tracking needs, and tests
//! can drive membership churn directly.

/// The 64-bit finalizer from splitmix64: a cheap, well-dispersed
/// avalanche over the whole word. Used both to place vnode points and
/// to mix routing keys, so short labels and low-entropy tags still
/// spread across the ring.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string — the same family the circuit
/// `structural_hash` builds on, kept dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Mixes a circuit's `structural_hash` with its resolved shard tag
/// into one routing key. The tag rides along so shard-affine traffic
/// (e.g. a `fidelity/ionq/*` specialist's slice) colocates: the same
/// circuit compiled under two objectives is two cache entries, and
/// routing them to the same replica as their shard-mates keeps each
/// replica's cache a coherent slice of the workload.
pub fn mix_key(structural_hash: u64, shard_tag: u64) -> u64 {
    splitmix64(structural_hash ^ splitmix64(shard_tag))
}

/// A consistent-hash ring over small-integer member ids (the router's
/// replica indices), each expanded into virtual-node points.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    /// Sorted `(point hash, member)` pairs — binary-searched per route.
    points: Vec<(u64, usize)>,
    /// Live members and the labels their points were derived from.
    members: Vec<(usize, String)>,
}

impl HashRing {
    /// An empty ring placing `vnodes` points per member (minimum 1).
    pub fn new(vnodes: usize) -> Self {
        HashRing {
            vnodes: vnodes.max(1),
            points: Vec::new(),
            members: Vec::new(),
        }
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Inserts `member` with `label` (idempotent: re-inserting an
    /// existing member is a no-op). Point placement depends only on
    /// the label and vnode index, so a member that leaves and rejoins
    /// reclaims exactly the arcs it owned before.
    pub fn insert(&mut self, member: usize, label: &str) {
        if self.contains(member) {
            return;
        }
        self.members.push((member, label.to_string()));
        let seed = fnv1a(label.as_bytes());
        for vnode in 0..self.vnodes {
            let point = splitmix64(seed ^ splitmix64(vnode as u64 + 1));
            self.points.push((point, member));
        }
        self.points.sort_unstable();
    }

    /// Removes `member`; its arcs fall to their ring successors while
    /// every other key keeps its owner.
    pub fn remove(&mut self, member: usize) {
        self.members.retain(|(m, _)| *m != member);
        self.points.retain(|(_, m)| *m != member);
    }

    /// Returns `true` while `member` is on the ring.
    pub fn contains(&self, member: usize) -> bool {
        self.members.iter().any(|(m, _)| *m == member)
    }

    /// Live member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` when no members remain.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Live member ids, in insertion order.
    pub fn members(&self) -> Vec<usize> {
        self.members.iter().map(|(m, _)| *m).collect()
    }

    /// Routes a key to the owner of the first point at or after it,
    /// wrapping past the top of the ring. `None` on an empty ring.
    pub fn route(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let at = self.points.partition_point(|(point, _)| *point < key);
        let (_, member) = self.points[at % self.points.len()];
        Some(member)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(labels: &[&str], vnodes: usize) -> HashRing {
        let mut ring = HashRing::new(vnodes);
        for (i, label) in labels.iter().enumerate() {
            ring.insert(i, label);
        }
        ring
    }

    #[test]
    fn routes_deterministically_and_wraps() {
        let ring = ring_of(&["a:1", "b:2", "c:3"], 16);
        for key in [0u64, 1, u64::MAX, 0x1234_5678_9abc_def0] {
            let first = ring.route(key).unwrap();
            assert_eq!(ring.route(key).unwrap(), first);
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.route(42), None);
    }

    #[test]
    fn removal_moves_only_the_removed_members_keys() {
        let mut ring = ring_of(&["a:1", "b:2", "c:3"], 64);
        let keys: Vec<u64> = (0..512u64).map(splitmix64).collect();
        let before: Vec<usize> = keys.iter().map(|&k| ring.route(k).unwrap()).collect();
        ring.remove(1);
        for (&key, &owner) in keys.iter().zip(&before) {
            let now = ring.route(key).unwrap();
            if owner != 1 {
                assert_eq!(now, owner, "key {key:#x} moved off a surviving replica");
            } else {
                assert_ne!(now, 1, "key {key:#x} still routes to the removed replica");
            }
        }
    }

    #[test]
    fn rejoin_reclaims_the_same_arcs() {
        let mut ring = ring_of(&["a:1", "b:2", "c:3"], 64);
        let keys: Vec<u64> = (0..256u64).map(splitmix64).collect();
        let before: Vec<usize> = keys.iter().map(|&k| ring.route(k).unwrap()).collect();
        ring.remove(2);
        ring.insert(2, "c:3");
        let after: Vec<usize> = keys.iter().map(|&k| ring.route(k).unwrap()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut ring = ring_of(&["a:1"], 32);
        ring.insert(0, "a:1");
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.members(), vec![0]);
    }

    #[test]
    fn mix_key_separates_tags() {
        // The same circuit under two shard tags must produce distinct
        // routing keys (two cache entries, possibly two owners).
        let hash = 0xdead_beef_cafe_f00d;
        assert_ne!(mix_key(hash, 0), mix_key(hash, 1));
    }
}
