//! The fleet router behind `qrc-lb`: consistent-hash request routing
//! over N `qrc-serve --listen` replicas.
//!
//! One [`FleetRouter`] fronts a fleet of NDJSON/TCP replicas. Each
//! compilation request is parsed just far enough to extract a routing
//! key — the circuit's `structural_hash` mixed with its resolved
//! [`ShardKey`] tag via [`crate::ring::mix_key`] — and consistently
//! hashed onto a [`HashRing`] of replicas with virtual nodes, so every
//! replica's LRU cache owns a disjoint slice of the repeated workload
//! and aggregate cache capacity scales linearly with replica count.
//! Lines that cannot yield a key (malformed requests, unparsable QASM)
//! fall back to round-robin and are still forwarded, so the replica
//! produces the byte-identical error payload a single-node deployment
//! would.
//!
//! Per replica the router keeps one persistent data connection with a
//! bounded in-flight window. The window is the router's overload
//! contract: sized at or below the replica's queue capacity it cannot
//! trigger `overloaded` rejections, and because the replica answers
//! scheduled requests in FIFO order per connection, responses are
//! matched to forwarded requests positionally — only an `overloaded`
//! rejection (possible when other clients share the replica) can
//! overtake, and those are matched by echoed `id` and passed through.
//! Control lines are never forwarded on the data connection: `stats` /
//! `metrics` / `snapshot` fan out over dedicated short-lived
//! connections so control replies cannot desynchronize the FIFO.
//!
//! Health: a connect failure, EOF, or I/O error ejects the replica
//! from the ring, and every request still in its window is re-routed
//! to the ring successors of its keys — rerouted, not dropped. A
//! background reconnector re-admits the replica (and exactly its old
//! arcs, see [`HashRing`]) once it answers again. On drain the router
//! can fan `{"cmd":"snapshot"}` out so replicas persist their cache
//! slice and rejoin warm via `--warm-cache`.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use serde_json::Value;

use crate::listener::{read_bounded_line, write_loop, ReadLine, ShutdownFlag};
use crate::protocol::{ControlRequest, InboundLine, ServeRequest, ServeResponse, OVERLOADED_ERROR};
use crate::ring::{mix_key, HashRing};
use crate::shard::ShardKey;

/// Tuning of the fleet router.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Replica addresses (`host:port`), the fleet membership.
    pub replicas: Vec<String>,
    /// Virtual nodes per replica on the hash ring.
    pub vnodes: usize,
    /// Most in-flight requests per replica connection. Keep at or
    /// below the replica's `--queue` capacity so the router itself can
    /// never trigger an `overloaded` rejection.
    pub window: usize,
    /// Dial timeout for replica connections (data and control).
    pub connect_timeout: Duration,
    /// Read timeout for control fan-out replies (stats can sit behind
    /// an in-flight batch).
    pub control_timeout: Duration,
    /// How long the reconnector sleeps between re-admission probes of
    /// an ejected replica.
    pub reconnect_wait: Duration,
    /// Reject client lines longer than this many bytes.
    pub max_line_bytes: usize,
    /// Fan `{"cmd":"snapshot"}` out to every live replica when the
    /// router drains, so replicas rejoin warm via `--warm-cache`.
    pub snapshot_on_drain: bool,
    /// Also fan `{"cmd":"shutdown"}` out on drain, taking the fleet
    /// down with the router.
    pub drain_replicas: bool,
    /// Record which replica every routed key landed on (the locality
    /// log the bench harness audits); costs a map insert per request.
    pub record_routes: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            replicas: Vec::new(),
            vnodes: 64,
            window: 64,
            connect_timeout: Duration::from_secs(2),
            control_timeout: Duration::from_secs(60),
            reconnect_wait: Duration::from_millis(250),
            max_line_bytes: 1 << 20,
            snapshot_on_drain: false,
            drain_replicas: false,
            record_routes: false,
        }
    }
}

/// One request the router has forwarded and not yet seen answered:
/// the raw line (so an ejection can re-route it), its routing key, and
/// the client to answer.
struct Ticket {
    line: String,
    key: Option<u64>,
    reply: ClientSink,
}

/// Routes reply lines back to one router client through a bounded
/// channel; a client that stops reading is severed rather than
/// buffered without limit (same policy as the replica front end).
#[derive(Clone)]
struct ClientSink {
    tx: mpsc::SyncSender<String>,
    stream: Arc<TcpStream>,
}

impl ClientSink {
    fn send(&self, line: String) {
        if self.tx.try_send(line).is_err() {
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// The per-replica connection state guarded by one mutex: the write
/// half of the data connection, the FIFO of in-flight tickets, and the
/// stop flag of the current reader generation.
struct ConnState {
    writer: Option<BufWriter<TcpStream>>,
    pending: VecDeque<Ticket>,
    /// Stops the reader of the current connection; replaced on every
    /// reconnect so a stale reader can never eject its successor.
    stop: ShutdownFlag,
    /// Bumped on ejection: an eject call carrying a stale generation
    /// is a no-op, making ejection idempotent across the racing
    /// writer-failure and reader-failure paths.
    generation: u64,
}

/// One replica of the fleet: address, health, connection state, and
/// the counters the merged stats report nests per replica.
struct Replica {
    index: usize,
    addr: String,
    sockaddr: SocketAddr,
    healthy: AtomicBool,
    state: Mutex<ConnState>,
    /// Signals window slots freeing up (a response arrived) and state
    /// transitions (ejection) to blocked forwarders.
    window_open: Condvar,
    /// Guards against concurrent reconnector threads for one replica.
    reconnecting: AtomicBool,
    /// Requests successfully written to this replica.
    routed: AtomicU64,
    /// Responses received and delivered to clients.
    completed: AtomicU64,
    /// Tickets taken back from this replica's window at ejection and
    /// re-routed to ring successors.
    rerouted: AtomicU64,
    /// Times this replica was ejected from the ring.
    ejections: AtomicU64,
}

/// Router-wide counters surfaced in the merged stats `fleet` block.
#[derive(Default)]
struct RouterCounters {
    /// Requests answered inline because no replica was healthy.
    unroutable: AtomicU64,
    /// Requests forwarded round-robin because no routing key could be
    /// extracted (the replica still answers them, FIFO).
    round_robin: AtomicU64,
    /// `overloaded` rejections passed through from replicas.
    overloaded: AtomicU64,
    /// Malformed control-looking lines the router answered inline
    /// (byte-identical to the replica front end's own reply).
    parse_errors: AtomicU64,
}

/// The consistent-hash fleet router. Construct with [`FleetRouter::new`],
/// connect the fleet with [`FleetRouter::start`], then serve clients
/// with [`FleetRouter::run`].
pub struct FleetRouter {
    config: RouterConfig,
    ring: Mutex<HashRing>,
    replicas: Vec<Arc<Replica>>,
    rr_cursor: AtomicUsize,
    counters: RouterCounters,
    shutdown: ShutdownFlag,
    /// Reader/reconnector threads, joined at the end of [`FleetRouter::run`].
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// key → replicas it was routed to (only with `record_routes`).
    route_log: Mutex<HashMap<u64, Vec<usize>>>,
}

impl FleetRouter {
    /// Builds a router over `config.replicas`. Addresses are resolved
    /// here; an unresolvable address is an error.
    ///
    /// # Errors
    ///
    /// Returns an error when the replica list is empty or an address
    /// does not resolve.
    pub fn new(config: RouterConfig) -> std::io::Result<FleetRouter> {
        if config.replicas.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one --replica",
            ));
        }
        let mut replicas = Vec::with_capacity(config.replicas.len());
        for (index, addr) in config.replicas.iter().enumerate() {
            let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("replica address `{addr}` did not resolve"),
                )
            })?;
            replicas.push(Arc::new(Replica {
                index,
                addr: addr.clone(),
                sockaddr,
                healthy: AtomicBool::new(false),
                state: Mutex::new(ConnState {
                    writer: None,
                    pending: VecDeque::new(),
                    stop: ShutdownFlag::new(),
                    generation: 0,
                }),
                window_open: Condvar::new(),
                reconnecting: AtomicBool::new(false),
                routed: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                rerouted: AtomicU64::new(0),
                ejections: AtomicU64::new(0),
            }));
        }
        let ring = HashRing::new(config.vnodes);
        Ok(FleetRouter {
            config,
            ring: Mutex::new(ring),
            replicas,
            rr_cursor: AtomicUsize::new(0),
            counters: RouterCounters::default(),
            shutdown: ShutdownFlag::new(),
            threads: Mutex::new(Vec::new()),
            route_log: Mutex::new(HashMap::new()),
        })
    }

    /// The router's shutdown flag: request it (SIGTERM bridge, embedding
    /// application) to begin a graceful drain of [`FleetRouter::run`].
    pub fn shutdown_flag(&self) -> ShutdownFlag {
        self.shutdown.clone()
    }

    /// Dials every replica and admits the reachable ones to the ring.
    /// Unreachable replicas start ejected with a reconnector probing
    /// for them; at least one replica must be reachable.
    ///
    /// # Errors
    ///
    /// Returns an error when no replica could be reached.
    pub fn start(self: &Arc<Self>) -> std::io::Result<()> {
        let mut reached = 0usize;
        for replica in &self.replicas {
            match self.connect_replica(replica) {
                Ok(()) => reached += 1,
                Err(e) => {
                    eprintln!(
                        "qrc-lb: replica {} unreachable at startup ({e}); probing in background",
                        replica.addr
                    );
                    self.spawn_reconnector(replica);
                }
            }
        }
        if reached == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "no replica reachable at startup",
            ));
        }
        Ok(())
    }

    /// Serves router clients on `listener` until shutdown is requested
    /// (SIGTERM bridge or a client's `{"cmd":"shutdown"}`), then
    /// drains: in-flight tickets complete or re-route, snapshot /
    /// shutdown fan-out per config, and all threads join.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the listener cannot be
    /// configured. Per-connection errors end that connection only.
    pub fn run(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let active_clients = Arc::new(AtomicUsize::new(0));
        while !self.shutdown.is_requested() {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    active_clients.fetch_add(1, Ordering::SeqCst);
                    let router = Arc::clone(self);
                    let active = Arc::clone(&active_clients);
                    std::thread::spawn(move || {
                        router.handle_client(stream);
                        active.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
        // Drain: clients finish answering what they already forwarded…
        while active_clients.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        // …then every window runs dry (responses arrive or ejection
        // re-routes; an empty ring answers the leftovers inline).
        loop {
            let pending: usize = self
                .replicas
                .iter()
                .map(|r| r.state.lock().expect("replica lock poisoned").pending.len())
                .sum();
            if pending == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        if self.config.snapshot_on_drain {
            for (addr, result) in self.fan_control(r#"{"cmd":"snapshot"}"#) {
                match result {
                    Ok(_) => eprintln!("qrc-lb: snapshot fanned out to {addr}"),
                    Err(e) => eprintln!("qrc-lb: snapshot fan-out to {addr} failed: {e}"),
                }
            }
        }
        if self.config.drain_replicas {
            for (addr, result) in self.fan_control(r#"{"cmd":"shutdown"}"#) {
                if let Err(e) = result {
                    eprintln!("qrc-lb: shutdown fan-out to {addr} failed: {e}");
                }
            }
        }
        // Stop replica readers and reconnectors, then join them.
        for replica in &self.replicas {
            replica
                .state
                .lock()
                .expect("replica lock poisoned")
                .stop
                .request();
        }
        let threads = std::mem::take(&mut *self.threads.lock().expect("threads lock poisoned"));
        for handle in threads {
            let _ = handle.join();
        }
        Ok(())
    }

    /// The observed locality log: every routing key and the replicas
    /// it landed on (in landing order). Empty unless
    /// [`RouterConfig::record_routes`] is set.
    pub fn route_log(&self) -> Vec<(u64, Vec<usize>)> {
        self.route_log
            .lock()
            .expect("route log poisoned")
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }

    /// Per-replica `(addr, routed, completed, rerouted, ejections,
    /// healthy)` counters, indexed like the config's replica list.
    pub fn replica_counters(&self) -> Vec<(String, u64, u64, u64, u64, bool)> {
        self.replicas
            .iter()
            .map(|r| {
                (
                    r.addr.clone(),
                    r.routed.load(Ordering::Relaxed),
                    r.completed.load(Ordering::Relaxed),
                    r.rerouted.load(Ordering::Relaxed),
                    r.ejections.load(Ordering::Relaxed),
                    r.healthy.load(Ordering::SeqCst),
                )
            })
            .collect()
    }

    /// Requests the router forwarded round-robin because no routing
    /// key could be extracted.
    pub fn round_robin_count(&self) -> u64 {
        self.counters.round_robin.load(Ordering::Relaxed)
    }

    /// Requests answered inline because no replica was healthy.
    pub fn unroutable_count(&self) -> u64 {
        self.counters.unroutable.load(Ordering::Relaxed)
    }

    // ----- client side ------------------------------------------------

    /// One router client: reads NDJSON lines, answers control lines
    /// from the fleet, forwards everything else.
    fn handle_client(self: &Arc<Self>, stream: TcpStream) {
        let write_half = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => return,
        };
        let disconnect = match stream.try_clone() {
            Ok(clone) => Arc::new(clone),
            Err(_) => return,
        };
        let (reply_tx, reply_rx) = mpsc::sync_channel::<String>(1024);
        let sink = ClientSink {
            tx: reply_tx,
            stream: disconnect,
        };
        let writer = std::thread::spawn(move || {
            let mut out = BufWriter::new(write_half);
            write_loop(&mut out, &reply_rx);
        });
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .ok();
        let mut reader = BufReader::new(stream);
        loop {
            if self.shutdown.is_requested() {
                break;
            }
            match read_bounded_line(&mut reader, self.config.max_line_bytes, &self.shutdown) {
                Err(_) | Ok(ReadLine::Eof) => break,
                Ok(ReadLine::TooLong(bytes)) => {
                    let response = ServeResponse {
                        id: None,
                        result: Err(crate::service::oversized_error(
                            bytes,
                            self.config.max_line_bytes,
                        )),
                        micros: 1,
                        route: None,
                        rid: None,
                    };
                    sink.send(response.to_line());
                }
                Ok(ReadLine::Line(line)) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    if self.triage_client_line(line, &sink) {
                        break;
                    }
                }
            }
        }
        drop(sink);
        writer.join().expect("router client writer panicked");
    }

    /// Dispatches one client line; returns `true` when the connection
    /// should stop (shutdown requested).
    fn triage_client_line(self: &Arc<Self>, line: String, sink: &ClientSink) -> bool {
        if !line.contains("\"cmd\"") {
            let key = routing_key(&line);
            self.forward(line, key, sink);
            return false;
        }
        match InboundLine::parse(&line) {
            Ok(InboundLine::Request(_)) => {
                // `"cmd"` appeared inside an ordinary request's payload.
                let key = routing_key(&line);
                self.forward(line, key, sink);
                false
            }
            Ok(InboundLine::Control(ControlRequest::Stats)) => {
                sink.send(serde_json::to_string(&self.merged_stats()));
                false
            }
            Ok(InboundLine::Control(ControlRequest::Metrics)) => {
                sink.send(serde_json::to_string(&self.merged_metrics()));
                false
            }
            Ok(InboundLine::Control(ControlRequest::Shutdown)) => {
                self.shutdown.request();
                sink.send(serde_json::to_string(&Value::object(vec![
                    ("ok", Value::from(true)),
                    ("shutting_down", Value::from(true)),
                ])));
                true
            }
            // Snapshot / reload / calibrate apply fleet-wide: fan the
            // raw line out and nest each replica's own reply.
            Ok(InboundLine::Control(_)) => {
                sink.send(serde_json::to_string(&self.fanned_reply(&line)));
                false
            }
            Err(message) => {
                // Byte-identical to the replica front end's own inline
                // reply, so single-node and fleet clients see the same
                // error payloads.
                self.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                let response = ServeResponse {
                    id: ServeRequest::recover_id(&line),
                    result: Err(message),
                    micros: 1,
                    route: None,
                    rid: None,
                };
                sink.send(response.to_line());
                false
            }
        }
    }

    // ----- data path --------------------------------------------------

    /// Forwards one request line: consistent-hash on its key, round-
    /// robin without one, retrying across ejections until a replica
    /// accepts it or the ring is empty.
    fn forward(self: &Arc<Self>, mut line: String, key: Option<u64>, reply: &ClientSink) {
        if key.is_none() {
            self.counters.round_robin.fetch_add(1, Ordering::Relaxed);
        }
        loop {
            let target = match key {
                Some(k) => self.ring.lock().expect("ring lock poisoned").route(k),
                None => self.next_round_robin(),
            };
            let Some(index) = target else {
                self.counters.unroutable.fetch_add(1, Ordering::Relaxed);
                let response = ServeResponse {
                    id: ServeRequest::recover_id(&line),
                    result: Err("unavailable: no healthy replicas".to_string()),
                    micros: 1,
                    route: None,
                    rid: None,
                };
                reply.send(response.to_line());
                return;
            };
            match self.try_send(index, line, key, reply) {
                Ok(()) => {
                    if self.config.record_routes {
                        if let Some(k) = key {
                            let mut log = self.route_log.lock().expect("route log poisoned");
                            let owners = log.entry(k).or_default();
                            if owners.last() != Some(&index) {
                                owners.push(index);
                            }
                        }
                    }
                    return;
                }
                // The target was ejected under us; the ring has moved
                // its arcs, so re-route.
                Err(returned) => line = returned,
            }
        }
    }

    /// Queues one line into `index`'s bounded window and writes it on
    /// the data connection. Blocks while the window is full (lossless
    /// back-pressure toward the client). Hands the line back when the
    /// replica is (or becomes) unavailable.
    #[allow(clippy::result_large_err)]
    fn try_send(
        self: &Arc<Self>,
        index: usize,
        line: String,
        key: Option<u64>,
        reply: &ClientSink,
    ) -> Result<(), String> {
        let replica = &self.replicas[index];
        let mut state = replica.state.lock().expect("replica lock poisoned");
        loop {
            if state.writer.is_none() || !replica.healthy.load(Ordering::SeqCst) {
                return Err(line);
            }
            if state.pending.len() < self.config.window.max(1) {
                break;
            }
            let (next, _) = replica
                .window_open
                .wait_timeout(state, Duration::from_millis(100))
                .expect("replica lock poisoned");
            state = next;
        }
        state.pending.push_back(Ticket {
            line: line.clone(),
            key,
            reply: reply.clone(),
        });
        let generation = state.generation;
        let writer = state.writer.as_mut().expect("writer checked above");
        let wrote = writeln!(writer, "{line}").and_then(|()| writer.flush());
        match wrote {
            Ok(()) => {
                replica.routed.fetch_add(1, Ordering::Relaxed);
                drop(state);
                Ok(())
            }
            Err(_) => {
                // Undo our own enqueue (the lock was held throughout,
                // so the back element is ours), then eject: the ring
                // loses this replica and the caller re-routes.
                state.pending.pop_back();
                drop(state);
                self.eject(replica, generation);
                Err(line)
            }
        }
    }

    /// The next healthy replica after the round-robin cursor, if any.
    fn next_round_robin(&self) -> Option<usize> {
        let n = self.replicas.len();
        let start = self.rr_cursor.fetch_add(1, Ordering::Relaxed);
        (0..n)
            .map(|offset| (start + offset) % n)
            .find(|&index| self.replicas[index].healthy.load(Ordering::SeqCst))
    }

    // ----- replica side -----------------------------------------------

    /// Dials one replica, installs its writer, marks it healthy, joins
    /// it to the ring, and spawns its response reader.
    fn connect_replica(self: &Arc<Self>, replica: &Arc<Replica>) -> std::io::Result<()> {
        let stream = TcpStream::connect_timeout(&replica.sockaddr, self.config.connect_timeout)?;
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone()?;
        read_half
            .set_read_timeout(Some(Duration::from_millis(100)))
            .ok();
        let stop = ShutdownFlag::new();
        let generation;
        {
            let mut state = replica.state.lock().expect("replica lock poisoned");
            state.writer = Some(BufWriter::new(stream));
            state.stop = stop.clone();
            generation = state.generation;
        }
        replica.healthy.store(true, Ordering::SeqCst);
        self.ring
            .lock()
            .expect("ring lock poisoned")
            .insert(replica.index, &replica.addr);
        let router = Arc::clone(self);
        let replica = Arc::clone(replica);
        let handle = std::thread::spawn(move || {
            router.read_responses(&replica, read_half, &stop, generation);
        });
        self.threads
            .lock()
            .expect("threads lock poisoned")
            .push(handle);
        Ok(())
    }

    /// One replica connection's response reader: matches each response
    /// line to the head of the in-flight FIFO (or by `id` for an
    /// overtaking `overloaded` rejection) and delivers it.
    fn read_responses(
        self: &Arc<Self>,
        replica: &Arc<Replica>,
        read_half: TcpStream,
        stop: &ShutdownFlag,
        generation: u64,
    ) {
        let mut reader = BufReader::new(read_half);
        loop {
            match read_bounded_line(&mut reader, self.config.max_line_bytes, stop) {
                Ok(ReadLine::Line(line)) => {
                    let ticket = {
                        let mut state = replica.state.lock().expect("replica lock poisoned");
                        if line.contains(OVERLOADED_ERROR) {
                            self.counters.overloaded.fetch_add(1, Ordering::Relaxed);
                            take_by_id(&mut state.pending, &line)
                        } else {
                            state.pending.pop_front()
                        }
                    };
                    replica.window_open.notify_all();
                    if let Some(ticket) = ticket {
                        replica.completed.fetch_add(1, Ordering::Relaxed);
                        ticket.reply.send(line);
                    }
                }
                Ok(ReadLine::TooLong(_)) => {
                    // A replica response over the line limit is a
                    // protocol violation; treat like a broken stream.
                    self.eject(replica, generation);
                    return;
                }
                Ok(ReadLine::Eof) | Err(_) => {
                    // A requested stop reads as EOF: clean drain. A real
                    // EOF or error is the replica dying mid-stream.
                    if !stop.is_requested() {
                        self.eject(replica, generation);
                    }
                    return;
                }
            }
        }
    }

    /// Ejects a replica: off the ring, connection dropped, and every
    /// ticket still in its window re-routed to the keys' new owners.
    /// Idempotent per connection generation.
    fn eject(self: &Arc<Self>, replica: &Arc<Replica>, generation: u64) {
        let pending = {
            let mut state = replica.state.lock().expect("replica lock poisoned");
            if state.generation != generation {
                return;
            }
            state.generation += 1;
            state.stop.request();
            state.writer = None;
            replica.healthy.store(false, Ordering::SeqCst);
            std::mem::take(&mut state.pending)
        };
        replica.window_open.notify_all();
        self.ring
            .lock()
            .expect("ring lock poisoned")
            .remove(replica.index);
        replica.ejections.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "qrc-lb: replica {} ejected ({} in-flight re-routed)",
            replica.addr,
            pending.len()
        );
        if !self.shutdown.is_requested() {
            self.spawn_reconnector(replica);
        }
        for ticket in pending {
            replica.rerouted.fetch_add(1, Ordering::Relaxed);
            self.forward(ticket.line, ticket.key, &ticket.reply);
        }
    }

    /// Probes an ejected replica until it answers again, then re-admits
    /// it (the ring hands back exactly its old arcs). One probe thread
    /// per replica at a time.
    fn spawn_reconnector(self: &Arc<Self>, replica: &Arc<Replica>) {
        if replica
            .reconnecting
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        let router = Arc::clone(self);
        let replica = Arc::clone(replica);
        let handle = std::thread::spawn(move || {
            while !router.shutdown.is_requested() {
                std::thread::sleep(router.config.reconnect_wait);
                match router.connect_replica(&replica) {
                    Ok(()) => {
                        eprintln!("qrc-lb: replica {} re-admitted", replica.addr);
                        break;
                    }
                    Err(_) => continue,
                }
            }
            replica.reconnecting.store(false, Ordering::SeqCst);
        });
        self.threads
            .lock()
            .expect("threads lock poisoned")
            .push(handle);
    }

    // ----- control fan-out --------------------------------------------

    /// Sends one control line to every replica over a dedicated
    /// short-lived connection (never the data connection, which must
    /// stay FIFO) and collects each reply.
    fn fan_control(&self, line: &str) -> Vec<(String, Result<Value, String>)> {
        self.replicas
            .iter()
            .map(|replica| (replica.addr.clone(), self.control_round_trip(replica, line)))
            .collect()
    }

    /// One control round trip to one replica.
    fn control_round_trip(&self, replica: &Replica, line: &str) -> Result<Value, String> {
        let stream = TcpStream::connect_timeout(&replica.sockaddr, self.config.connect_timeout)
            .map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(self.config.control_timeout))
            .ok();
        let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        writeln!(writer, "{line}").map_err(|e| format!("write: {e}"))?;
        writer.flush().map_err(|e| format!("flush: {e}"))?;
        let mut reply = String::new();
        BufReader::new(stream)
            .read_line(&mut reply)
            .map_err(|e| format!("read: {e}"))?;
        if reply.trim().is_empty() {
            return Err("empty reply".to_string());
        }
        serde_json::from_str(reply.trim()).map_err(|e| format!("parse: {e}"))
    }

    /// Fans a control line out and nests every replica's reply under
    /// its address, with a top-level `ok` that ands the fleet.
    fn fanned_reply(&self, line: &str) -> Value {
        let per = self.fan_control(line);
        let mut all_ok = true;
        let mut nested = Vec::with_capacity(per.len());
        for (addr, result) in per {
            match result {
                Ok(value) => {
                    all_ok &= value.get("ok").and_then(Value::as_bool).unwrap_or(false);
                    nested.push((addr, value));
                }
                Err(e) => {
                    all_ok = false;
                    nested.push((
                        addr,
                        Value::object(vec![("ok", Value::from(false)), ("error", Value::from(e))]),
                    ));
                }
            }
        }
        Value::object(vec![
            ("ok", Value::from(all_ok)),
            ("replicas", Value::object(nested)),
        ])
    }

    /// The merged `{"cmd":"stats"}` reply: fleet-wide counters summed
    /// across replicas (rates recomputed, never summed), plus a
    /// `fleet` block nesting each replica's own stats snapshot and the
    /// router's routing counters.
    pub fn merged_stats(&self) -> Value {
        let per = self.fan_control(r#"{"cmd":"stats"}"#);
        let stats: Vec<&Value> = per.iter().filter_map(|(_, r)| r.as_ref().ok()).collect();
        let sum = |path: &[&str]| -> u64 { stats.iter().map(|v| get_u64(v, path)).sum() };
        let hits = sum(&["cache", "hits"]);
        let misses = sum(&["cache", "misses"]);
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        let mut pairs = vec![
            ("requests".to_string(), Value::from(sum(&["requests"]))),
            ("errors".to_string(), Value::from(sum(&["errors"]))),
            ("rejected".to_string(), Value::from(sum(&["rejected"]))),
            (
                "responses".to_string(),
                Value::object(vec![
                    ("hit", Value::from(sum(&["responses", "hit"]))),
                    ("miss", Value::from(sum(&["responses", "miss"]))),
                    ("coalesced", Value::from(sum(&["responses", "coalesced"]))),
                ]),
            ),
            (
                "cache".to_string(),
                Value::object(vec![
                    ("hits", Value::from(hits)),
                    ("warm_hits", Value::from(sum(&["cache", "warm_hits"]))),
                    ("misses", Value::from(misses)),
                    ("insertions", Value::from(sum(&["cache", "insertions"]))),
                    ("evictions", Value::from(sum(&["cache", "evictions"]))),
                    ("hit_rate", Value::from(hit_rate)),
                ]),
            ),
            ("shards".to_string(), merge_shards(&stats)),
            (
                "routes".to_string(),
                Value::object(vec![
                    ("exact", Value::from(sum(&["routes", "exact"]))),
                    (
                        "band_wildcard",
                        Value::from(sum(&["routes", "band_wildcard"])),
                    ),
                    (
                        "device_wildcard",
                        Value::from(sum(&["routes", "device_wildcard"])),
                    ),
                    (
                        "objective_only",
                        Value::from(sum(&["routes", "objective_only"])),
                    ),
                ]),
            ),
        ];
        pairs.push(("fleet".to_string(), self.fleet_block(&per)));
        Value::object(pairs)
    }

    /// The per-replica block nested under `fleet` in merged stats.
    fn fleet_block(&self, per: &[(String, Result<Value, String>)]) -> Value {
        let healthy = self
            .replicas
            .iter()
            .filter(|r| r.healthy.load(Ordering::SeqCst))
            .count();
        let mut nested = Vec::with_capacity(per.len());
        for (replica, (addr, result)) in self.replicas.iter().zip(per) {
            let stats = match result {
                Ok(value) => value.clone(),
                Err(e) => Value::object(vec![
                    ("ok", Value::from(false)),
                    ("error", Value::from(e.clone())),
                ]),
            };
            nested.push((
                addr.clone(),
                Value::object(vec![
                    (
                        "healthy",
                        Value::from(replica.healthy.load(Ordering::SeqCst)),
                    ),
                    (
                        "routed",
                        Value::from(replica.routed.load(Ordering::Relaxed)),
                    ),
                    (
                        "completed",
                        Value::from(replica.completed.load(Ordering::Relaxed)),
                    ),
                    (
                        "rerouted",
                        Value::from(replica.rerouted.load(Ordering::Relaxed)),
                    ),
                    (
                        "ejections",
                        Value::from(replica.ejections.load(Ordering::Relaxed)),
                    ),
                    ("stats", stats),
                ]),
            ));
        }
        Value::object(vec![
            ("replicas".to_string(), Value::from(per.len() as u64)),
            ("healthy".to_string(), Value::from(healthy as u64)),
            (
                "router".to_string(),
                Value::object(vec![
                    (
                        "round_robin",
                        Value::from(self.counters.round_robin.load(Ordering::Relaxed)),
                    ),
                    (
                        "unroutable",
                        Value::from(self.counters.unroutable.load(Ordering::Relaxed)),
                    ),
                    (
                        "overloaded",
                        Value::from(self.counters.overloaded.load(Ordering::Relaxed)),
                    ),
                    (
                        "parse_errors",
                        Value::from(self.counters.parse_errors.load(Ordering::Relaxed)),
                    ),
                    ("vnodes", Value::from(self.config.vnodes as u64)),
                ]),
            ),
            ("per_replica".to_string(), Value::object(nested)),
        ])
    }

    /// The merged `{"cmd":"metrics"}` reply: every replica's Prometheus
    /// exposition fetched and merged series-by-series (cumulative
    /// counters and histogram buckets sum; so do depth gauges).
    pub fn merged_metrics(&self) -> Value {
        let per = self.fan_control(r#"{"cmd":"metrics"}"#);
        let mut texts = Vec::new();
        let mut oks = Vec::new();
        let mut all_ok = true;
        for (addr, result) in &per {
            let ok = match result {
                Ok(value) => {
                    if let Some(text) = value.get("metrics").and_then(Value::as_str) {
                        texts.push(text.to_string());
                        true
                    } else {
                        false
                    }
                }
                Err(_) => false,
            };
            all_ok &= ok;
            oks.push((addr.clone(), Value::from(ok)));
        }
        Value::object(vec![
            ("ok".to_string(), Value::from(all_ok)),
            ("format".to_string(), Value::from("prometheus_text_0_0_4")),
            ("metrics".to_string(), Value::from(merge_prometheus(&texts))),
            ("replicas".to_string(), Value::object(oks)),
        ])
    }
}

/// Extracts the consistent-hash routing key from a request line:
/// parse the request, parse its QASM, then mix the circuit's
/// `structural_hash` with the resolved shard tag. `None` (→ round-
/// robin) when any stage fails — the replica still answers the line,
/// producing the same error payload a single node would.
fn routing_key(line: &str) -> Option<u64> {
    let request = ServeRequest::parse(line).ok()?;
    let circuit = qrc_circuit::qasm::from_qasm(&request.qasm).ok()?;
    let tag =
        ShardKey::for_request(request.objective, request.device_pin, circuit.num_qubits()).tag();
    Some(mix_key(circuit.structural_hash(), tag))
}

/// Removes the pending ticket whose request `id` matches the one
/// echoed on `line` (an overtaking `overloaded` rejection); falls back
/// to the FIFO head when no id matches.
fn take_by_id(pending: &mut VecDeque<Ticket>, line: &str) -> Option<Ticket> {
    if let Some(id) = ServeRequest::recover_id(line) {
        if let Some(at) = pending
            .iter()
            .position(|t| ServeRequest::recover_id(&t.line).as_deref() == Some(id.as_str()))
        {
            return pending.remove(at);
        }
    }
    pending.pop_front()
}

/// Walks a JSON path of object keys.
fn get_path<'v>(value: &'v Value, path: &[&str]) -> Option<&'v Value> {
    let mut at = value;
    for key in path {
        at = at.get(key)?;
    }
    Some(at)
}

/// A summable counter at a JSON path (0 when absent).
fn get_u64(value: &Value, path: &[&str]) -> u64 {
    get_path(value, path).and_then(Value::as_u64).unwrap_or(0)
}

/// Merges the per-shard counter blocks of several stats snapshots:
/// union of shard names (first-seen order), counters summed.
fn merge_shards(stats: &[&Value]) -> Value {
    let mut order: Vec<String> = Vec::new();
    let mut merged: HashMap<String, [u64; 5]> = HashMap::new();
    const FIELDS: [&str; 5] = ["routed", "hit", "miss", "coalesced", "errors"];
    for value in stats {
        let Some(shards) = value.get("shards").and_then(Value::as_object) else {
            continue;
        };
        for (name, counters) in shards {
            let slot = merged.entry(name.clone()).or_insert_with(|| {
                order.push(name.clone());
                [0; 5]
            });
            for (i, field) in FIELDS.iter().enumerate() {
                slot[i] += get_u64(counters, &[field]);
            }
        }
    }
    Value::object(
        order
            .into_iter()
            .map(|name| {
                let slot = merged[&name];
                (
                    name,
                    Value::object(
                        FIELDS
                            .iter()
                            .zip(slot)
                            .map(|(field, count)| (field.to_string(), Value::from(count)))
                            .collect(),
                    ),
                )
            })
            .collect(),
    )
}

/// Merges Prometheus text expositions series-by-series: every sample
/// value with the same series key (name plus labels) is summed —
/// correct for cumulative counters, histogram bucket counts, and
/// additive gauges like queue depth. Comment lines and series order
/// follow the first exposition; series only later replicas expose are
/// appended.
fn merge_prometheus(texts: &[String]) -> String {
    enum Entry {
        Comment(String),
        Series(String),
    }
    let mut order: Vec<Entry> = Vec::new();
    let mut values: HashMap<String, f64> = HashMap::new();
    for (i, text) in texts.iter().enumerate() {
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if line.starts_with('#') {
                if i == 0 {
                    order.push(Entry::Comment(line.to_string()));
                }
                continue;
            }
            let Some(split) = line.rfind(' ') else {
                continue;
            };
            let key = &line[..split];
            let value: f64 = line[split + 1..].parse().unwrap_or(0.0);
            if !values.contains_key(key) {
                order.push(Entry::Series(key.to_string()));
            }
            *values.entry(key.to_string()).or_insert(0.0) += value;
        }
    }
    let mut out = String::new();
    for entry in order {
        match entry {
            Entry::Comment(line) => {
                out.push_str(&line);
                out.push('\n');
            }
            Entry::Series(key) => {
                let value = values[&key];
                if value.fract() == 0.0 && value.abs() < 9.0e15 {
                    out.push_str(&format!("{key} {}\n", value as i64));
                } else {
                    out.push_str(&format!("{key} {value}\n"));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_key_none_for_unparsable_lines() {
        assert_eq!(routing_key("not json"), None);
        assert_eq!(routing_key(r#"{"id":"a","qasm":"h q[0];"}"#), None);
    }

    #[test]
    fn routing_key_stable_and_tag_sensitive() {
        let circuit = qrc_benchgen::BenchmarkFamily::Ghz.generate(3);
        let qasm = qrc_circuit::qasm::to_qasm(&circuit);
        let line = |objective: &str| {
            serde_json::to_string(&Value::object(vec![
                ("id", Value::from("k")),
                ("qasm", Value::from(qasm.clone())),
                ("objective", Value::from(objective)),
            ]))
        };
        let depth = routing_key(&line("critical_depth")).unwrap();
        assert_eq!(routing_key(&line("critical_depth")).unwrap(), depth);
        // Same circuit, different objective → different shard tag →
        // different routing key.
        assert_ne!(routing_key(&line("fidelity")).unwrap(), depth);
    }

    #[test]
    fn prometheus_merge_sums_series() {
        let a = "# HELP x a counter\n# TYPE x counter\nx_total 3\ny{q=\"0.5\"} 1.5\n".to_string();
        let b = "# HELP x a counter\n# TYPE x counter\nx_total 4\ny{q=\"0.5\"} 2.5\nz_only 1\n"
            .to_string();
        let merged = merge_prometheus(&[a, b]);
        assert!(merged.contains("x_total 7\n"), "{merged}");
        assert!(merged.contains("y{q=\"0.5\"} 4\n"), "{merged}");
        assert!(merged.contains("z_only 1\n"), "{merged}");
        assert_eq!(merged.matches("# HELP x").count(), 1);
    }

    #[test]
    fn take_by_id_matches_overtaking_rejections() {
        let (tx, _rx) = mpsc::sync_channel(4);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let sink = ClientSink {
            tx,
            stream: Arc::new(stream),
        };
        let mut pending = VecDeque::new();
        for id in ["a", "b", "c"] {
            pending.push_back(Ticket {
                line: format!(r#"{{"id":"{id}","qasm":"x"}}"#),
                key: None,
                reply: sink.clone(),
            });
        }
        let taken = take_by_id(&mut pending, r#"{"id":"b","ok":false}"#).unwrap();
        assert!(taken.line.contains(r#""id":"b""#));
        assert_eq!(pending.len(), 2);
        // No id → FIFO head.
        let taken = take_by_id(&mut pending, r#"{"ok":false}"#).unwrap();
        assert!(taken.line.contains(r#""id":"a""#));
    }
}
