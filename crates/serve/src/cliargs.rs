//! Minimal shared argument parsing for the workspace binaries
//! (`qrc-serve` and `evaluate`): flag values are parsed to `Result`s
//! with actionable messages instead of panicking on user input.

use std::str::FromStr;

/// Reads the value following flag `args[*i]`, advancing `*i` past it.
///
/// # Errors
///
/// Returns a user-facing message when the value is missing or fails to
/// parse as `T`.
pub fn flag_value<T: FromStr>(args: &[String], i: &mut usize, flag: &str) -> Result<T, String> {
    *i += 1;
    let raw = args
        .get(*i)
        .ok_or_else(|| format!("--{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("invalid value `{raw}` for --{flag}"))
}

/// Prints `message` to stderr and exits with status 2 (usage error).
pub fn usage_error(message: &str, usage: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{usage}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_and_advances() {
        let a = args(&["--timesteps", "5000", "--seed", "9"]);
        let mut i = 0;
        assert_eq!(flag_value::<usize>(&a, &mut i, "timesteps"), Ok(5000));
        assert_eq!(i, 1);
        i += 1;
        assert_eq!(flag_value::<u64>(&a, &mut i, "seed"), Ok(9));
    }

    #[test]
    fn missing_and_invalid_values_are_messages_not_panics() {
        let a = args(&["--timesteps"]);
        let mut i = 0;
        let err = flag_value::<usize>(&a, &mut i, "timesteps").unwrap_err();
        assert!(err.contains("needs a value"), "{err}");

        let a = args(&["--seed", "many"]);
        let mut i = 0;
        let err = flag_value::<u64>(&a, &mut i, "seed").unwrap_err();
        assert!(err.contains("invalid value `many`"), "{err}");
    }
}
