//! # qrc-serve
//!
//! A long-lived compilation service on top of the trained RL policies:
//! the paper's deliverable as infrastructure rather than a one-shot
//! script. Load models once, answer many compilation requests fast.
//!
//! Four layers, composed by [`CompilationService`]:
//!
//! * [`ModelRegistry`] — persists [`TrainedPredictor`] checkpoints to
//!   disk, keyed by [`ShardKey`] (`objective × device-class × width
//!   band`); the scheduler routes each request to the most specific
//!   matching shard through a deterministic fallback chain, and the
//!   registry hot-reloads by copy-on-swap (`{"cmd":"reload"}`) without
//!   dropping traffic,
//! * [`ResultCache`] — a sharded LRU keyed by (structural circuit
//!   hash, device pin, serving shard); repeated traffic never re-runs
//!   the policy,
//! * [`scheduler`] — batches requests, deduplicates in-flight
//!   identical jobs, and fans misses across a rayon pool with
//!   content-derived seeds so concurrent results are byte-identical to
//!   serial execution,
//! * [`persist`] — cache persistence & warmup: crash-safe NDJSON
//!   snapshots of the hot cache next to the checkpoints (validated
//!   against checkpoint identity on restore, so a swapped model never
//!   serves a stale persisted answer), a traffic log of served
//!   requests, and warmup that pre-loads/pre-compiles the head of the
//!   distribution before the listener accepts traffic,
//! * [`protocol`] — the newline-delimited JSON wire format,
//! * [`queue`] + [`listener`] — the pipelined front end: a bounded
//!   request queue filled by reader threads (TCP socket or stdin)
//!   while the scheduler drains batches, so I/O overlaps compute;
//!   with request size/width limits, batch-collection timeouts,
//!   back-pressure rejections, live `{"cmd":"stats"}`, and graceful
//!   `{"cmd":"shutdown"}`/SIGTERM/EOF draining,
//! * [`ring`] + [`router`] — horizontal scale-out: the `qrc-lb`
//!   consistent-hash router fronts N socket replicas, routing each
//!   request's `structural_hash` (mixed with its shard tag) onto a
//!   virtual-node hash ring so every replica's cache owns a disjoint
//!   slice of the workload; ejected replicas spill their arcs to ring
//!   successors and rejoin warm,
//! * [`retrain`] — the closed loop: `qrc-retrain` fine-tunes shard
//!   specialists offline on a frequency-weighted curriculum drawn from
//!   the traffic log (with entropy-bonus action-diversity shaping),
//!   and a promotion gate installs only candidates that are no worse
//!   on held-out reward and strictly better on the logged head; the
//!   next `{"cmd":"reload"}` swaps them in with zero stale answers.
//!
//! # Protocol
//!
//! One JSON object per line in, one per line out:
//!
//! ```text
//! → {"id":"r1","qasm":"OPENQASM 2.0;...","objective":"fidelity","device":"ionq_harmony"}
//! ← {"id":"r1","ok":true,"qasm":"...","device":"ionq_harmony","actions":[...],
//!    "reward":0.93,"cache":"miss","micros":1412}
//! ```
//!
//! `objective` is one of `fidelity` / `critical_depth` / `combination`
//! (default `fidelity`); `device` optionally pins the hardware target
//! (the policy still chooses synthesis/layout/routing/optimization).
//!
//! Control lines carry `cmd` instead of `qasm`: `{"cmd":"stats"}`
//! answers with a live metrics snapshot (per-shard routing counters
//! plus the registry's shard keys and checkpoint mtimes),
//! `{"cmd":"reload"}` hot-swaps the shard map from disk,
//! `{"cmd":"snapshot"}` persists the result cache for the next
//! restart's warmup, and `{"cmd":"shutdown"}` drains and stops the
//! server. When the request
//! queue is full the socket front end answers
//! `{"ok":false,"error":"overloaded: …"}` instead of queueing
//! unboundedly.
//!
//! # Example
//!
//! ```no_run
//! use qrc_serve::{CompilationService, ServiceConfig};
//!
//! let service = CompilationService::start(&ServiceConfig {
//!     models_dir: "models".into(),
//!     ..ServiceConfig::default()
//! })
//! .unwrap();
//! let reply = service.handle_line(r#"{"qasm":"OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];"}"#);
//! assert!(reply.contains("\"ok\""));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod cliargs;
pub mod http;
pub mod listener;
pub mod metrics;
pub mod persist;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod retrain;
pub mod ring;
pub mod router;
pub mod scheduler;
pub mod service;
pub mod shard;
pub mod traffic;

pub use cache::{device_seed_tag, CacheKey, CacheStats, ResultCache};
pub use http::serve_metrics_http;
pub use listener::{
    bind_ephemeral, install_sigterm_bridge, serve_socket, serve_stdin, FrontendConfig, ShutdownFlag,
};
pub use metrics::{
    percentile_us, MetricsSnapshot, RouteCounts, ServeMetrics, ShardCounterSnapshot, ShardCounters,
    Stage,
};
pub use persist::{
    head_of_distribution, head_of_distribution_counts, load_snapshot_file, snapshot_path,
    CacheSnapshot, PersistedEntry, SnapshotLoad, SnapshotShardStamp, TrafficLog, SNAPSHOT_FILE,
    SNAPSHOT_VERSION,
};
pub use protocol::{
    CacheStatus, CompiledResult, ControlRequest, InboundLine, ServeRequest, ServeResponse,
    OVERLOADED_ERROR,
};
pub use queue::{BoundedQueue, PushError};
pub use registry::{CheckpointIdentity, ModelRegistry, ReloadReport, RoutedShard};
pub use retrain::{
    build_curriculum, candidate_path, gate_candidate, install_or_quarantine, load_retrain_state,
    rejected_path, run_retrain, serving_shard, shard_slice, split_log, Curriculum, GateDecision,
    RetrainConfig, RetrainReport, ShardOutcome, RETRAIN_STATE_FILE,
};
pub use ring::{mix_key, splitmix64, HashRing};
pub use router::{FleetRouter, RouterConfig};
pub use scheduler::{BatchOptions, BatchReport, InferenceMode, MissModeCounts};
pub use service::{
    CompilationService, QueuedLine, ReplayWarmup, ServiceConfig, SnapshotWarmup, SnapshotWritten,
};
pub use shard::{DeviceClass, RouteLevel, ShardKey, ShardRoute, WidthBand};
pub use traffic::{synthetic_mix, TrafficConfig};
