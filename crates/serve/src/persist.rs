//! Cache persistence and warmup: snapshotting the result cache to a
//! versioned NDJSON file next to the model checkpoints, a traffic log
//! of served compilation requests, and the loaders that pre-warm a
//! restarted service before it accepts traffic.
//!
//! # Snapshot file format
//!
//! One header line followed by one line per persisted entry, in cache
//! eviction order (least recently used first):
//!
//! ```text
//! {"format":"qrc-cache-snapshot","version":2,"entries":2,"shards":[
//!   {"shard":"fidelity/any/any","checkpoint":"predictor_fidelity.json",
//!    "mtime_unix_nanos":1753776000000000000,"len":83211}],
//!  "devices":[{"device":"ionq_harmony","calibration_hash":1234…}]}
//! {"shard":"fidelity/any/any","circuit_hash":123…,"pin":null,
//!  "qasm":"OPENQASM 2.0;…","device":"ionq_harmony","actions":[…],"reward":0.93}
//! …
//! ```
//!
//! The header pins each persisted shard to the *checkpoint identity*
//! (file name, full-precision mtime, length) its entries were computed
//! under, and each referenced device to its *calibration identity*
//! (device name plus a content hash of its calibration data). A loader
//! drops every entry whose shard's checkpoint no longer matches — a
//! swapped model must never serve a stale persisted answer — and every
//! calibration-keyed entry (fidelity/combination objectives) whose
//! device was recalibrated since the snapshot, then rebases the
//! survivors onto the live registry's policy generations. Entries
//! naming a device the running registry does not know (a dynamic spec
//! whose JSON file went away) are skipped with a count, never a parse
//! error. Keys are persisted *without* the generation stamp, which is
//! process-local and meaningless across restarts.
//!
//! Writes are crash-safe (`.tmp` + fsync before rename, the same
//! discipline as checkpoint saves); a torn or truncated snapshot is
//! quarantined to `<name>.corrupt` and the service cold-starts,
//! mirroring the registry's torn-checkpoint handling.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use qrc_device::DeviceId;
use qrc_predictor::{atomic_write, PersistError};
use serde_json::Value;

use crate::protocol::{CompiledResult, ServeRequest};
use crate::registry::CheckpointIdentity;
use crate::shard::ShardKey;

/// The snapshot's file name inside the models directory (it lives
/// alongside the checkpoints it is validated against).
pub const SNAPSHOT_FILE: &str = "cache_snapshot.ndjson";

/// Snapshot format marker (first line's `format` field).
pub const SNAPSHOT_FORMAT: &str = "qrc-cache-snapshot";

/// Current snapshot schema version. Bump when the line layout changes;
/// loaders reject other versions (cold start, never a misparse).
/// Version 2 added per-device calibration stamps to the header.
pub const SNAPSHOT_VERSION: u64 = 2;

/// Where the snapshot of a service rooted at `models_dir` lives.
pub fn snapshot_path(models_dir: &Path) -> PathBuf {
    models_dir.join(SNAPSHOT_FILE)
}

/// One persisted shard's provenance: which checkpoint file its entries
/// were computed under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotShardStamp {
    /// The shard key.
    pub shard: ShardKey,
    /// The checkpoint identity at snapshot time.
    pub identity: CheckpointIdentity,
}

/// One persisted device's calibration provenance: which calibration
/// content its fidelity-keyed entries were computed under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDeviceStamp {
    /// The device's registry name.
    pub device: String,
    /// [`qrc_device::DeviceRegistry::calibration_hash`] at snapshot
    /// time.
    pub calibration_hash: u64,
}

/// One persisted cache entry: the content address (minus the
/// process-local generation) and the compiled result.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedEntry {
    /// `QuantumCircuit::structural_hash` of the request circuit.
    pub circuit_hash: u64,
    /// The requested device pin, if any.
    pub device_pin: Option<DeviceId>,
    /// The shard that served the entry.
    pub shard: ShardKey,
    /// The compiled answer.
    pub result: CompiledResult,
}

/// A decoded cache snapshot: per-shard checkpoint stamps plus the
/// persisted entries in eviction order (least recently used first).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheSnapshot {
    /// Checkpoint identities of every persisted shard.
    pub shards: Vec<SnapshotShardStamp>,
    /// Calibration identities of every device referenced by an entry.
    pub devices: Vec<SnapshotDeviceStamp>,
    /// The entries, least recently used first.
    pub entries: Vec<PersistedEntry>,
    /// Entry lines skipped at decode time because they name a device
    /// the running registry does not know (not serialized; always 0 on
    /// a freshly built snapshot).
    pub skipped_unknown: u64,
}

impl CacheSnapshot {
    /// Renders the snapshot as NDJSON (header line + one line per
    /// entry, each newline-terminated).
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        let header = Value::object(vec![
            ("format", Value::from(SNAPSHOT_FORMAT)),
            ("version", Value::from(SNAPSHOT_VERSION)),
            ("entries", Value::from(self.entries.len())),
            (
                "shards",
                Value::Array(
                    self.shards
                        .iter()
                        .map(|s| {
                            Value::object(vec![
                                ("shard", Value::from(s.shard.name())),
                                ("checkpoint", Value::from(s.identity.file_name.clone())),
                                (
                                    "mtime_unix_nanos",
                                    s.identity.mtime_unix_nanos.map_or(Value::Null, Value::from),
                                ),
                                ("len", Value::from(s.identity.len)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "devices",
                Value::Array(
                    self.devices
                        .iter()
                        .map(|d| {
                            Value::object(vec![
                                ("device", Value::from(d.device.clone())),
                                ("calibration_hash", Value::from(d.calibration_hash)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        out.push_str(&serde_json::to_string(&header));
        out.push('\n');
        for entry in &self.entries {
            out.push_str(&serde_json::to_string(&entry_value(entry)));
            out.push('\n');
        }
        out
    }

    /// The inverse of [`CacheSnapshot::to_ndjson`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first structural problem: a
    /// wrong format/version marker, a malformed line, or fewer entry
    /// lines than the header promised (a truncated file).
    pub fn from_ndjson(text: &str) -> Result<CacheSnapshot, String> {
        let mut lines = text.lines();
        let header_line = lines.next().ok_or("empty snapshot file")?;
        let header: Value =
            serde_json::from_str(header_line).map_err(|e| format!("bad header: {e}"))?;
        if header.get("format").and_then(Value::as_str) != Some(SNAPSHOT_FORMAT) {
            return Err("missing qrc-cache-snapshot format marker".into());
        }
        let version = header
            .get("version")
            .and_then(Value::as_u64)
            .ok_or("missing snapshot version")?;
        if version != SNAPSHOT_VERSION {
            return Err(format!(
                "snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
            ));
        }
        let promised = header
            .get("entries")
            .and_then(Value::as_u64)
            .ok_or("missing entry count")? as usize;
        let mut shards = Vec::new();
        for stamp in header
            .get("shards")
            .and_then(Value::as_array)
            .ok_or("missing shard stamps")?
        {
            shards.push(parse_shard_stamp(stamp)?);
        }
        let mut devices = Vec::new();
        for stamp in header
            .get("devices")
            .and_then(Value::as_array)
            .ok_or("missing device stamps")?
        {
            devices.push(SnapshotDeviceStamp {
                device: stamp
                    .get("device")
                    .and_then(Value::as_str)
                    .ok_or("device stamp missing `device`")?
                    .to_string(),
                calibration_hash: stamp
                    .get("calibration_hash")
                    .and_then(Value::as_u64)
                    .ok_or("device stamp missing `calibration_hash`")?,
            });
        }
        let mut entries = Vec::with_capacity(promised);
        let mut skipped_unknown = 0u64;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match parse_entry(line)? {
                Some(entry) => entries.push(entry),
                // A structurally valid line naming a device this
                // process does not know: the spec file went away, not
                // the snapshot — skip it, keep the rest warm.
                None => skipped_unknown += 1,
            }
        }
        if entries.len() as u64 + skipped_unknown != promised as u64 {
            return Err(format!(
                "truncated snapshot: header promised {promised} entries, found {}",
                entries.len() as u64 + skipped_unknown
            ));
        }
        Ok(CacheSnapshot {
            shards,
            devices,
            entries,
            skipped_unknown,
        })
    }

    /// Writes the snapshot atomically via the same `.tmp` + fsync +
    /// rename discipline as checkpoint saves ([`atomic_write`]), so a
    /// crash mid-write can never leave a half-snapshot under the real
    /// name.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; any `.ndjson.tmp` leftovers
    /// are harmless (the loader ignores them and the registry's
    /// startup sweep removes them).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        atomic_write(path, self.to_ndjson().as_bytes())
    }

    /// The checkpoint identity this snapshot recorded for `shard`.
    pub fn stamp_of(&self, shard: ShardKey) -> Option<&CheckpointIdentity> {
        self.shards
            .iter()
            .find(|s| s.shard == shard)
            .map(|s| &s.identity)
    }

    /// The calibration hash this snapshot recorded for `device`.
    pub fn calibration_stamp_of(&self, device: &str) -> Option<u64> {
        self.devices
            .iter()
            .find(|d| d.device == device)
            .map(|d| d.calibration_hash)
    }
}

/// How loading a snapshot file resolved.
#[derive(Debug)]
pub enum SnapshotLoad {
    /// No snapshot file exists (a genuinely cold start).
    Missing,
    /// The file was torn/truncated/unreadable as a snapshot: it was
    /// quarantined to the returned `.corrupt` path and the service
    /// cold-starts (the bytes are preserved for post-mortems).
    Quarantined(PathBuf),
    /// A structurally valid snapshot (per-shard staleness is the
    /// importer's job — structure and staleness are separate checks).
    Loaded(CacheSnapshot),
}

/// Reads and decodes the snapshot at `path`, quarantining torn files.
///
/// # Errors
///
/// Returns [`PersistError::Io`] only for real I/O failures (an
/// unreadable directory, a failed quarantine rename); corruption is
/// not an error — it resolves to [`SnapshotLoad::Quarantined`].
pub fn load_snapshot_file(path: &Path) -> Result<SnapshotLoad, PersistError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(SnapshotLoad::Missing),
        Err(e) => return Err(e.into()),
    };
    match CacheSnapshot::from_ndjson(&text) {
        Ok(snapshot) => Ok(SnapshotLoad::Loaded(snapshot)),
        Err(_) => {
            crate::registry::quarantine(path)?;
            Ok(SnapshotLoad::Quarantined(
                crate::registry::ModelRegistry::quarantine_path(path),
            ))
        }
    }
}

fn parse_shard_stamp(value: &Value) -> Result<SnapshotShardStamp, String> {
    let shard = value
        .get("shard")
        .and_then(Value::as_str)
        .ok_or("shard stamp missing `shard`")?;
    Ok(SnapshotShardStamp {
        shard: ShardKey::parse(shard)?,
        identity: CheckpointIdentity {
            file_name: value
                .get("checkpoint")
                .and_then(Value::as_str)
                .ok_or("shard stamp missing `checkpoint`")?
                .to_string(),
            mtime_unix_nanos: value.get("mtime_unix_nanos").and_then(Value::as_u64),
            len: value
                .get("len")
                .and_then(Value::as_u64)
                .ok_or("shard stamp missing `len`")?,
        },
    })
}

fn entry_value(entry: &PersistedEntry) -> Value {
    Value::object(vec![
        ("shard", Value::from(entry.shard.name())),
        ("circuit_hash", Value::from(entry.circuit_hash)),
        (
            "pin",
            entry
                .device_pin
                .map_or(Value::Null, |d| Value::from(d.name())),
        ),
        ("qasm", Value::from(entry.result.qasm.clone())),
        (
            "device",
            entry
                .result
                .device
                .map_or(Value::Null, |d| Value::from(d.name())),
        ),
        (
            "actions",
            Value::Array(
                entry
                    .result
                    .actions
                    .iter()
                    .map(|a| Value::from(a.clone()))
                    .collect(),
            ),
        ),
        ("reward", Value::from(entry.result.reward)),
    ])
}

/// Decodes one entry line. `Ok(None)` means the line is structurally
/// valid but names a device this process's registry does not know —
/// the caller skips and counts it (a vanished dynamic spec must not
/// cold-start the whole snapshot).
fn parse_entry(line: &str) -> Result<Option<PersistedEntry>, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("bad entry line: {e}"))?;
    let device_field = |field: &str| -> Result<Option<String>, String> {
        match value.get(field) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_str()
                .map(|s| Some(s.to_string()))
                .ok_or(format!("entry `{field}` must be a string")),
        }
    };
    let mut unknown = false;
    let mut resolve = |name: Option<String>| -> Option<DeviceId> {
        name.and_then(|n| {
            let id = DeviceId::from_name(&n);
            unknown |= id.is_none();
            id
        })
    };
    let device_pin = resolve(device_field("pin")?);
    let device = resolve(device_field("device")?);
    if unknown {
        return Ok(None);
    }
    Ok(Some(PersistedEntry {
        circuit_hash: value
            .get("circuit_hash")
            .and_then(Value::as_u64)
            .ok_or("entry missing `circuit_hash`")?,
        device_pin,
        shard: ShardKey::parse(
            value
                .get("shard")
                .and_then(Value::as_str)
                .ok_or("entry missing `shard`")?,
        )?,
        result: CompiledResult {
            qasm: value
                .get("qasm")
                .and_then(Value::as_str)
                .ok_or("entry missing `qasm`")?
                .to_string(),
            device,
            actions: value
                .get("actions")
                .and_then(Value::as_array)
                .ok_or("entry missing `actions`")?
                .iter()
                .map(|a| {
                    a.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "entry actions must be strings".to_string())
                })
                .collect::<Result<Vec<String>, String>>()?,
            reward: value
                .get("reward")
                .and_then(Value::as_f64)
                .ok_or("entry missing `reward`")?,
        },
    }))
}

/// An append-only log of served compilation requests, one canonical
/// request line ([`ServeRequest::to_line`]) per request. Replaying the
/// head of this log pre-compiles a restarted server's hottest circuits
/// before the listener opens.
pub struct TrafficLog {
    writer: Mutex<BufWriter<File>>,
}

impl TrafficLog {
    /// Opens (creating if needed) `path` for appending.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be opened.
    pub fn append(path: &Path) -> std::io::Result<TrafficLog> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(TrafficLog {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Appends one batch of requests and flushes, so the log trails
    /// live traffic by at most one batch even across a hard kill.
    /// Write failures are swallowed after the first flush error —
    /// traffic logging is an observability aid, never a reason to fail
    /// a compilation.
    pub fn log_batch(&self, requests: &[ServeRequest]) {
        let mut writer = self.writer.lock().expect("traffic log poisoned");
        for request in requests {
            let _ = writeln!(writer, "{}", request.to_line());
        }
        let _ = writer.flush();
    }

    /// Reads every parseable request line from a traffic log.
    /// Unparseable lines (a torn tail from a crash mid-append, stray
    /// garbage) are skipped, not fatal: warmup is best-effort.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be opened
    /// or read.
    pub fn read_requests(path: &Path) -> std::io::Result<Vec<ServeRequest>> {
        let mut requests = Vec::new();
        for line in BufReader::new(File::open(path)?).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if let Ok(request) = ServeRequest::parse(&line) {
                requests.push(request);
            }
        }
        Ok(requests)
    }
}

/// The head of a traffic distribution: unique requests ordered by
/// descending frequency (ties broken by first appearance, so the
/// result is deterministic), truncated to `cap`. Replaying these
/// pre-compiles the circuits most likely to be asked again first.
pub fn head_of_distribution(requests: &[ServeRequest], cap: usize) -> Vec<ServeRequest> {
    head_of_distribution_counts(requests, cap)
        .into_iter()
        .map(|(request, _)| request)
        .collect()
}

/// Like [`head_of_distribution`], additionally returning each unique
/// request's observed frequency — the weights the offline retraining
/// curriculum is built from.
pub fn head_of_distribution_counts(
    requests: &[ServeRequest],
    cap: usize,
) -> Vec<(ServeRequest, usize)> {
    let mut counts: HashMap<String, (usize, usize)> = HashMap::new();
    for (i, request) in requests.iter().enumerate() {
        // The id is caller correlation, not content: two requests that
        // differ only by id are the same compilation job.
        let mut keyed = request.clone();
        keyed.id = None;
        let entry = counts.entry(keyed.to_line()).or_insert((0, i));
        entry.0 += 1;
    }
    let mut ranked: Vec<(String, usize, usize)> = counts
        .into_iter()
        .map(|(line, (count, first))| (line, count, first))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)));
    ranked
        .into_iter()
        .take(cap)
        .filter_map(|(line, count, _)| ServeRequest::parse(&line).ok().map(|r| (r, count)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrc_predictor::RewardKind;

    fn sample_snapshot() -> CacheSnapshot {
        CacheSnapshot {
            shards: vec![SnapshotShardStamp {
                shard: ShardKey::wildcard(RewardKind::ExpectedFidelity),
                identity: CheckpointIdentity {
                    file_name: "predictor_fidelity.json".into(),
                    mtime_unix_nanos: Some(1_753_776_000_123_456_789),
                    len: 4321,
                },
            }],
            devices: vec![SnapshotDeviceStamp {
                device: "ionq_harmony".into(),
                calibration_hash: 0xDEAD_BEEF_CAFE_F00D,
            }],
            skipped_unknown: 0,
            entries: vec![
                PersistedEntry {
                    circuit_hash: u64::MAX - 7,
                    device_pin: Some(DeviceId::IonqHarmony),
                    shard: ShardKey::wildcard(RewardKind::ExpectedFidelity),
                    result: CompiledResult {
                        qasm: "OPENQASM 2.0;\nqreg q[2];\n".into(),
                        device: Some(DeviceId::IonqHarmony),
                        actions: vec!["platform:ionq".into(), "synthesize".into()],
                        reward: 0.875_312_9,
                    },
                },
                PersistedEntry {
                    circuit_hash: 42,
                    device_pin: None,
                    shard: ShardKey::wildcard(RewardKind::ExpectedFidelity),
                    result: CompiledResult {
                        qasm: "OPENQASM 2.0;\n".into(),
                        device: None,
                        actions: vec![],
                        reward: 0.5,
                    },
                },
            ],
        }
    }

    #[test]
    fn snapshot_round_trips_through_ndjson() {
        let snapshot = sample_snapshot();
        let decoded = CacheSnapshot::from_ndjson(&snapshot.to_ndjson()).unwrap();
        assert_eq!(decoded, snapshot, "order, hashes, and rewards survive");
        // u64 hashes near the top of the range survive exactly (the
        // vendored JSON keeps integers out of f64).
        assert_eq!(decoded.entries[0].circuit_hash, u64::MAX - 7);
    }

    #[test]
    fn truncated_and_malformed_snapshots_are_rejected() {
        let text = sample_snapshot().to_ndjson();
        // Drop the last line: the header's entry count no longer holds.
        let truncated: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        let err = CacheSnapshot::from_ndjson(&truncated).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        // A half-written entry line is malformed, not silently skipped.
        let torn = format!("{}{}", text, "{\"shard\":\"fidelity/any/any\",\"circ");
        assert!(CacheSnapshot::from_ndjson(&torn).is_err());
        assert!(CacheSnapshot::from_ndjson("").is_err());
        assert!(CacheSnapshot::from_ndjson("{\"format\":\"other\"}\n").is_err());
        let wrong_version = text.replacen("\"version\":2", "\"version\":999", 1);
        let err = CacheSnapshot::from_ndjson(&wrong_version).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn unknown_device_entries_skip_with_a_count() {
        let text = sample_snapshot()
            .to_ndjson()
            .replace("\"ionq_harmony\"", "\"vanished_device_9\"");
        let decoded = CacheSnapshot::from_ndjson(&text).unwrap();
        // The pinned ionq_harmony entry (pin + device fields both
        // renamed) skips; the unpinned entry survives; the count
        // reconciles against the header so truncation detection holds.
        assert_eq!(decoded.entries.len(), 1);
        assert_eq!(decoded.skipped_unknown, 1);
        assert_eq!(decoded.entries[0].circuit_hash, 42);
        // Device stamps are provenance, not a validity gate: a stamp
        // for an unknown device decodes fine.
        assert_eq!(
            decoded.calibration_stamp_of("vanished_device_9"),
            Some(0xDEAD_BEEF_CAFE_F00D)
        );
    }

    #[test]
    fn torn_snapshot_files_quarantine_and_missing_is_clean() {
        let dir = std::env::temp_dir().join(format!("qrc_persist_unit_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = snapshot_path(&dir);
        assert!(matches!(
            load_snapshot_file(&path).unwrap(),
            SnapshotLoad::Missing
        ));
        std::fs::write(&path, "{\"format\":\"qrc-cache-snapshot\",\"ver").unwrap();
        match load_snapshot_file(&path).unwrap() {
            SnapshotLoad::Quarantined(corrupt) => {
                assert!(corrupt.exists(), "torn bytes preserved");
                assert!(!path.exists(), "torn file moved out of the way");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // Write-then-load round trip through the real file path.
        let snapshot = sample_snapshot();
        snapshot.write(&path).unwrap();
        match load_snapshot_file(&path).unwrap() {
            SnapshotLoad::Loaded(loaded) => assert_eq!(loaded, snapshot),
            other => panic!("expected a loaded snapshot, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traffic_log_appends_and_replays() {
        let dir = std::env::temp_dir().join(format!("qrc_traffic_unit_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traffic.ndjson");
        let a = ServeRequest::new("OPENQASM 2.0;\nqreg q[1];\nh q[0];\n");
        let mut b = ServeRequest::new("OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\n");
        b.objective = RewardKind::CriticalDepth;
        {
            let log = TrafficLog::append(&path).unwrap();
            log.log_batch(&[a.clone(), b.clone()]);
        }
        {
            // Re-opening appends instead of truncating.
            let log = TrafficLog::append(&path).unwrap();
            log.log_batch(std::slice::from_ref(&a));
        }
        // A torn tail (crash mid-append) is skipped, not fatal.
        {
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(file, "{{\"qasm\":\"OPENQ").unwrap();
        }
        let replayed = TrafficLog::read_requests(&path).unwrap();
        assert_eq!(replayed, vec![a.clone(), b.clone(), a.clone()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn head_of_distribution_ranks_by_frequency() {
        let hot = ServeRequest::new("OPENQASM 2.0;\nqreg q[1];\nh q[0];\n");
        let mut warm = ServeRequest::new("OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\n");
        warm.objective = RewardKind::CriticalDepth;
        let cool = ServeRequest::new("OPENQASM 2.0;\nqreg q[1];\nx q[0];\n");
        let mut stream = Vec::new();
        for i in 0..5 {
            let mut r = hot.clone();
            // Distinct ids must still coalesce: id is not content.
            r.id = Some(format!("h{i}"));
            stream.push(r);
        }
        stream.push(cool.clone());
        stream.push(warm.clone());
        stream.push(warm.clone());
        let head = head_of_distribution(&stream, 2);
        assert_eq!(head.len(), 2);
        assert_eq!(head[0].qasm, hot.qasm);
        assert_eq!(head[1].qasm, warm.qasm);
        assert_eq!(head[1].objective, RewardKind::CriticalDepth);
        let all = head_of_distribution(&stream, 10);
        assert_eq!(all.len(), 3, "three unique jobs");
        assert_eq!(all[2].qasm, cool.qasm, "ties/uniques keep arrival order");
    }
}
