//! The `qrc-retrain` binary: offline closed-loop retraining from a
//! `qrc-serve --log-traffic` log.
//!
//! ```text
//! cargo run --release -p qrc-serve --bin qrc-retrain -- [flags]
//!
//! flags:
//!   --models DIR        live checkpoint directory (default models);
//!                       candidates, quarantined rejects, and the
//!                       retrain_state.json summary land here too
//!   --log FILE          traffic log to learn from (required — the
//!                       path given to qrc-serve --log-traffic)
//!   --timesteps N       fine-tuning budget per shard  (default 2000)
//!   --cap N             unique jobs kept from each shard's head
//!                       (default 32)
//!   --max-repeats N     per-job frequency repetition cap (default 8)
//!   --holdout-every N   hold every Nth logged request out for the
//!                       promotion gate (default 4, min 2)
//!   --min-requests N    skip shards with fewer logged requests
//!                       (default 4)
//!   --entropy-coef X    entropy-bonus coefficient for fine-tuning
//!                       (default 0.03)
//!   --entropy-floor X   minimum candidate rollout entropy, nats
//!                       (default 0.05)
//!   --seed N            master seed (default 17)
//!   --shard KEY         restrict to one shard (`obj/class/band`,
//!                       e.g. fidelity/any/any); repeatable
//!   --quiet             suppress per-shard progress on stderr
//! ```
//!
//! The report JSON is printed to stdout. Promotion only touches the
//! file system — point a running `qrc-serve` at the same `--models`
//! directory and send `{"cmd":"reload"}` to swap promoted checkpoints
//! in with zero downtime.

use qrc_serve::cliargs::{flag_value, usage_error};
use qrc_serve::{run_retrain, RetrainConfig, ShardKey};

const USAGE: &str = "usage: qrc-retrain --log FILE [--models DIR] [--timesteps N] [--cap N] \
                     [--max-repeats N] [--holdout-every N] [--min-requests N] \
                     [--entropy-coef X] [--entropy-floor X] [--seed N] \
                     [--shard KEY]... [--quiet]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = RetrainConfig {
        verbose: true,
        ..RetrainConfig::default()
    };
    let mut log: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--models" => match flag_value::<String>(&args, &mut i, "models") {
                Ok(dir) => config.models_dir = dir.into(),
                Err(e) => usage_error(&e, USAGE),
            },
            "--log" => match flag_value::<String>(&args, &mut i, "log") {
                Ok(path) => log = Some(path),
                Err(e) => usage_error(&e, USAGE),
            },
            "--timesteps" => parse_into(&args, &mut i, "timesteps", &mut config.timesteps),
            "--cap" => parse_into(&args, &mut i, "cap", &mut config.curriculum_cap),
            "--max-repeats" => parse_into(&args, &mut i, "max-repeats", &mut config.max_repeats),
            "--holdout-every" => {
                parse_into(&args, &mut i, "holdout-every", &mut config.holdout_every)
            }
            "--min-requests" => parse_into(&args, &mut i, "min-requests", &mut config.min_requests),
            "--entropy-coef" => parse_into(&args, &mut i, "entropy-coef", &mut config.entropy_coef),
            "--entropy-floor" => {
                parse_into(&args, &mut i, "entropy-floor", &mut config.entropy_floor)
            }
            "--seed" => parse_into(&args, &mut i, "seed", &mut config.seed),
            "--shard" => match flag_value::<String>(&args, &mut i, "shard") {
                Ok(text) => match ShardKey::parse(&text) {
                    Ok(key) => config.shards.push(key),
                    Err(e) => usage_error(&e, USAGE),
                },
                Err(e) => usage_error(&e, USAGE),
            },
            "--quiet" => config.verbose = false,
            other => usage_error(&format!("unknown flag `{other}`"), USAGE),
        }
        i += 1;
    }
    let Some(log) = log else {
        usage_error("--log FILE is required", USAGE);
    };
    config.log_path = log.into();
    if config.timesteps == 0 {
        usage_error("--timesteps must be at least 1", USAGE);
    }
    if config.curriculum_cap == 0 {
        usage_error("--cap must be at least 1", USAGE);
    }

    match run_retrain(&config) {
        Ok(report) => {
            println!("{}", serde_json::to_string_pretty(&report.to_value()));
        }
        Err(e) => {
            eprintln!("error: retrain failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Parses the flag's value into `slot`, exiting with a usage error on
/// missing or malformed input.
fn parse_into<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str, slot: &mut T) {
    match flag_value(args, i, flag) {
        Ok(v) => *slot = v,
        Err(e) => usage_error(&e, USAGE),
    }
}
