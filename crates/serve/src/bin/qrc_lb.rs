//! The `qrc-lb` binary: a consistent-hash load balancer fronting a
//! fleet of `qrc-serve --listen` replicas.
//!
//! ```text
//! cargo run --release -p qrc-serve --bin qrc-lb -- [flags]
//!
//! flags:
//!   --replica ADDR      a qrc-serve replica (host:port); repeatable,
//!                       at least one required
//!   --listen ADDR       client-facing NDJSON/TCP address (default
//!                       127.0.0.1:0 — the chosen port is printed to
//!                       stderr); busy addresses fall back to an
//!                       ephemeral loopback port
//!   --vnodes N          virtual nodes per replica on the hash ring
//!                       (default 64)
//!   --window N          most in-flight requests per replica; keep at
//!                       or below the replicas' --queue capacity
//!                       (default 64)
//!   --connect-timeout-ms N   replica dial timeout       (default 2000)
//!   --control-timeout-ms N   control fan-out read timeout (default 60000)
//!   --reconnect-ms N    re-admission probe interval     (default 250)
//!   --max-line-bytes N  reject client lines longer than N bytes
//!                       (default 1048576)
//!   --snapshot-on-drain fan {"cmd":"snapshot"} to every replica when
//!                       the router drains, so replicas rejoin warm
//!                       via --warm-cache
//!   --drain-replicas    also fan {"cmd":"shutdown"} on drain, taking
//!                       the fleet down with the router
//!   --stats             print the merged fleet stats JSON to stderr
//!                       at exit (live: send {"cmd":"stats"})
//! ```
//!
//! Protocol: identical to `qrc-serve` — clients need no changes.
//! Compilation requests are consistently hashed (circuit structural
//! hash × shard tag) onto the replica ring; `{"cmd":"stats"}` and
//! `{"cmd":"metrics"}` fan out to every replica and come back merged
//! (counters summed, per-replica blocks nested under `fleet` /
//! `replicas`); `{"cmd":"snapshot"}`, `{"cmd":"reload"}`, and
//! `{"cmd":"calibrate"}` fan out and nest each replica's reply;
//! `{"cmd":"shutdown"}` (or SIGTERM) drains the router. A replica
//! that dies mid-stream is ejected from the ring and its in-flight
//! requests are re-routed to the ring successors — rerouted, not
//! dropped; a background probe re-admits it (onto exactly its old
//! arcs) when it answers again.

use std::sync::Arc;
use std::time::Duration;

use qrc_serve::cliargs::{flag_value, usage_error};
use qrc_serve::{bind_ephemeral, install_sigterm_bridge, FleetRouter, RouterConfig};

const USAGE: &str = "usage: qrc-lb --replica ADDR [--replica ADDR]... [--listen ADDR] \
                     [--vnodes N] [--window N] [--connect-timeout-ms N] \
                     [--control-timeout-ms N] [--reconnect-ms N] [--max-line-bytes N] \
                     [--snapshot-on-drain] [--drain-replicas] [--stats]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = RouterConfig::default();
    let mut listen: Option<String> = None;
    let mut print_stats = false;
    let mut connect_timeout_ms: u64 = 2_000;
    let mut control_timeout_ms: u64 = 60_000;
    let mut reconnect_ms: u64 = 250;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--replica" => match flag_value::<String>(&args, &mut i, "replica") {
                Ok(addr) => config.replicas.push(addr),
                Err(e) => usage_error(&e, USAGE),
            },
            "--listen" => match flag_value::<String>(&args, &mut i, "listen") {
                Ok(addr) => listen = Some(addr),
                Err(e) => usage_error(&e, USAGE),
            },
            "--vnodes" => parse_into(&args, &mut i, "vnodes", &mut config.vnodes),
            "--window" => parse_into(&args, &mut i, "window", &mut config.window),
            "--connect-timeout-ms" => {
                parse_into(&args, &mut i, "connect-timeout-ms", &mut connect_timeout_ms)
            }
            "--control-timeout-ms" => {
                parse_into(&args, &mut i, "control-timeout-ms", &mut control_timeout_ms)
            }
            "--reconnect-ms" => parse_into(&args, &mut i, "reconnect-ms", &mut reconnect_ms),
            "--max-line-bytes" => {
                parse_into(&args, &mut i, "max-line-bytes", &mut config.max_line_bytes)
            }
            "--snapshot-on-drain" => config.snapshot_on_drain = true,
            "--drain-replicas" => config.drain_replicas = true,
            "--stats" => print_stats = true,
            other => usage_error(&format!("unknown flag `{other}`"), USAGE),
        }
        i += 1;
    }
    if config.replicas.is_empty() {
        usage_error("at least one --replica is required", USAGE);
    }
    if config.vnodes == 0 {
        usage_error("--vnodes must be at least 1", USAGE);
    }
    if config.window == 0 {
        usage_error("--window must be at least 1", USAGE);
    }
    config.connect_timeout = Duration::from_millis(connect_timeout_ms.max(1));
    config.control_timeout = Duration::from_millis(control_timeout_ms.max(1));
    config.reconnect_wait = Duration::from_millis(reconnect_ms.max(1));

    let router = match FleetRouter::new(config) {
        Ok(router) => Arc::new(router),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    // SIGTERM drains exactly like {"cmd":"shutdown"} — installed
    // before the replica dials so a TERM during a slow fleet startup
    // still exits cleanly.
    install_sigterm_bridge(&router.shutdown_flag());
    if let Err(e) = router.start() {
        eprintln!("error: could not reach the fleet: {e}");
        std::process::exit(1);
    }
    let listener = match bind_ephemeral(listen.as_deref()) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("error: could not bind a client listener: {e}");
            std::process::exit(1);
        }
    };
    // Always printed: with an ephemeral port this is the only way to
    // learn the address clients should dial.
    match listener.local_addr() {
        Ok(local) => eprintln!("qrc-lb listening on {local}"),
        Err(_) => eprintln!("qrc-lb listening"),
    }
    let served = router.run(listener);
    if print_stats {
        eprintln!("{}", serde_json::to_string_pretty(&router.merged_stats()));
    }
    if let Err(e) = served {
        eprintln!("error: router ended early: {e}");
        std::process::exit(1);
    }
}

/// Parses the flag's value into `slot`, exiting with a usage error on
/// missing or malformed input.
fn parse_into<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str, slot: &mut T) {
    match flag_value(args, i, flag) {
        Ok(v) => *slot = v,
        Err(e) => usage_error(&e, USAGE),
    }
}
