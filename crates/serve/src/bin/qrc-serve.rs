//! The `qrc-serve` binary: a newline-delimited JSON compilation
//! service over a TCP socket (`--listen`) or stdin/stdout (default).
//!
//! ```text
//! cargo run --release -p qrc-serve --bin qrc-serve -- [flags]
//!
//! flags:
//!   --listen ADDR       serve NDJSON over TCP (e.g. 127.0.0.1:7777;
//!                       port 0 picks an ephemeral port, printed to
//!                       stderr); omitted = stdin/stdout mode
//!   --models DIR        checkpoint directory            (default models/)
//!   --device-dir DIR    load every *.json device spec in DIR into the
//!                       device registry before startup; loaded devices
//!                       are pinnable by name and hot-recalibratable via
//!                       {"cmd":"calibrate"}
//!   --shard SPEC        ensure a policy shard exists (repeatable):
//!                       objective/device-class/width-band, e.g.
//!                       fidelity/ibm/narrow — trained on its scoped
//!                       benchmark slice when the checkpoint is missing;
//!                       the three objective-only wildcard shards are
//!                       always ensured
//!   --timesteps N       training budget per missing model (default 8000)
//!   --seed N            master seed                     (default 3)
//!   --train-max-qubits N  training-suite width for missing models (default 6)
//!   --cache-capacity N  result cache entries            (default 4096)
//!   --cache-shards N    cache shards                    (default 16)
//!   --batch N           most requests per scheduled batch
//!                       (default 16 pipelined, 1 with --blocking)
//!   --batch-wait-us N   batch-collection timeout in µs  (default 2000)
//!   --queue N           bounded request-queue capacity  (default 1024)
//!   --max-line-bytes N  reject request lines longer than N bytes
//!                       (default 1048576)
//!   --max-width N       reject circuits wider than N qubits (default 128)
//!   --blocking          legacy stdin loop: read a batch, compute it,
//!                       repeat (no I/O/compute overlap; stdin only)
//!   --serial            compute cache misses serially (results identical)
//!   --quantized         serve cache misses with the int8-quantized
//!                       policy when its equivalence gate passes
//!                       (bit-exact f64 fallback otherwise); implies
//!                       batched inference
//!   --no-batch-inference  run each miss through the single-row f64
//!                       forward pass instead of the batched
//!                       matrix-matrix path (results identical)
//!   --warm-cache        persist & pre-warm the result cache: import
//!                       cache_snapshot.ndjson from the models dir
//!                       before taking traffic (stale entries dropped,
//!                       torn snapshots quarantined) and snapshot again
//!                       on graceful drain; live snapshots via
//!                       {"cmd":"snapshot"}
//!   --replay-log PATH   pre-compile the head of a traffic log's
//!                       request distribution before taking traffic
//!   --log-traffic PATH  append every served compilation request to
//!                       PATH (one request line each; replayable)
//!   --log-requests      one structured JSON log line per request (stderr),
//!                       carrying the same `rid` the response echoes
//!   --stats             print aggregate metrics JSON to stderr at exit
//!                       (live snapshots: send {"cmd":"stats"})
//!   --metrics-listen ADDR  serve the Prometheus text exposition over
//!                       HTTP GET /metrics on ADDR (e.g. 127.0.0.1:9187;
//!                       also available in-band as {"cmd":"metrics"})
//!   --trace-sample N    trace one request in N with per-stage spans
//!                       (0 = off, 1 = every request)
//!   --trace-out PATH    write sampled spans as Chrome-trace JSON to
//!                       PATH at drain (open in ui.perfetto.dev);
//!                       implies --trace-sample 1 unless set
//!   --quiet             suppress startup/training progress
//! ```
//!
//! Protocol: one request object per line in, one response per line
//! out. `{"cmd":"stats"}` answers with live metrics (including loaded
//! shard keys, checkpoint mtimes, and the known-device list),
//! `{"cmd":"reload"}` hot-swaps the shard map from the models
//! directory without dropping traffic,
//! `{"cmd":"calibrate","device":NAME,"calibration":SPEC}` hot-swaps
//! one device's calibration data (selectively invalidating that
//! device's fidelity-keyed cache entries), and `{"cmd":"shutdown"}`
//! (or SIGTERM in any mode, or EOF on stdin) drains in-flight
//! batches and exits cleanly — a TERM-initiated drain answers
//! everything already read and exits 0. See the crate docs for the
//! field reference.

use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

use qrc_serve::cliargs::{flag_value, usage_error};
use qrc_serve::{
    CompilationService, ControlRequest, FrontendConfig, InboundLine, ServeRequest, ServeResponse,
    ServiceConfig, ShardKey, ShutdownFlag,
};

const USAGE: &str = "usage: qrc-serve [--listen ADDR] [--models DIR] [--device-dir DIR] \
                     [--shard SPEC]... [--timesteps N] [--seed N] \
                     [--train-max-qubits N] [--cache-capacity N] [--cache-shards N] \
                     [--batch N] [--batch-wait-us N] [--queue N] [--max-line-bytes N] \
                     [--max-width N] [--blocking] [--serial] [--quantized] \
                     [--no-batch-inference] [--warm-cache] \
                     [--replay-log PATH] [--log-traffic PATH] \
                     [--log-requests] [--stats] [--metrics-listen ADDR] \
                     [--trace-sample N] [--trace-out PATH] [--quiet]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServiceConfig::default();
    let mut frontend = FrontendConfig::default();
    let mut listen: Option<String> = None;
    let mut device_dir: Option<std::path::PathBuf> = None;
    let mut batch: Option<usize> = None;
    let mut batch_wait_us: u64 = 2_000;
    let mut blocking = false;
    let mut print_stats = false;
    let mut warm_cache = false;
    let mut replay_log: Option<std::path::PathBuf> = None;
    let mut log_traffic: Option<std::path::PathBuf> = None;
    let mut metrics_listen: Option<String> = None;
    let mut trace_sample: u64 = 0;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--listen" => match flag_value::<String>(&args, &mut i, "listen") {
                Ok(addr) => listen = Some(addr),
                Err(e) => usage_error(&e, USAGE),
            },
            "--models" => match flag_value::<String>(&args, &mut i, "models") {
                Ok(dir) => config.models_dir = dir.into(),
                Err(e) => usage_error(&e, USAGE),
            },
            "--device-dir" => match flag_value::<String>(&args, &mut i, "device-dir") {
                Ok(dir) => device_dir = Some(std::path::PathBuf::from(dir)),
                Err(e) => usage_error(&e, USAGE),
            },
            "--shard" => match flag_value::<String>(&args, &mut i, "shard") {
                Ok(spec) => match ShardKey::parse(&spec) {
                    Ok(key) => config.shards.push(key),
                    Err(e) => usage_error(&e, USAGE),
                },
                Err(e) => usage_error(&e, USAGE),
            },
            "--timesteps" => parse_into(&args, &mut i, "timesteps", &mut config.timesteps),
            "--seed" => parse_into(&args, &mut i, "seed", &mut config.seed),
            "--train-max-qubits" => parse_into(
                &args,
                &mut i,
                "train-max-qubits",
                &mut config.train_max_qubits,
            ),
            "--cache-capacity" => {
                parse_into(&args, &mut i, "cache-capacity", &mut config.cache_capacity)
            }
            "--cache-shards" => parse_into(&args, &mut i, "cache-shards", &mut config.cache_shards),
            "--batch" => {
                let mut value = 0usize;
                parse_into(&args, &mut i, "batch", &mut value);
                batch = Some(value);
            }
            "--batch-wait-us" => parse_into(&args, &mut i, "batch-wait-us", &mut batch_wait_us),
            "--queue" => parse_into(&args, &mut i, "queue", &mut frontend.queue_capacity),
            "--max-line-bytes" => parse_into(
                &args,
                &mut i,
                "max-line-bytes",
                &mut config.max_request_bytes,
            ),
            "--max-width" => parse_into(&args, &mut i, "max-width", &mut config.max_circuit_qubits),
            "--blocking" => blocking = true,
            "--serial" => config.parallel = false,
            "--quantized" => config.quantized = true,
            "--no-batch-inference" => config.batch_inference = false,
            "--warm-cache" => warm_cache = true,
            "--replay-log" => match flag_value::<String>(&args, &mut i, "replay-log") {
                Ok(path) => replay_log = Some(path.into()),
                Err(e) => usage_error(&e, USAGE),
            },
            "--log-traffic" => match flag_value::<String>(&args, &mut i, "log-traffic") {
                Ok(path) => log_traffic = Some(path.into()),
                Err(e) => usage_error(&e, USAGE),
            },
            "--log-requests" => frontend.log_requests = true,
            "--stats" => print_stats = true,
            "--metrics-listen" => match flag_value::<String>(&args, &mut i, "metrics-listen") {
                Ok(addr) => metrics_listen = Some(addr),
                Err(e) => usage_error(&e, USAGE),
            },
            "--trace-sample" => parse_into(&args, &mut i, "trace-sample", &mut trace_sample),
            "--trace-out" => match flag_value::<String>(&args, &mut i, "trace-out") {
                Ok(path) => trace_out = Some(path.into()),
                Err(e) => usage_error(&e, USAGE),
            },
            "--quiet" => config.verbose = false,
            other => usage_error(&format!("unknown flag `{other}`"), USAGE),
        }
        i += 1;
    }
    if batch == Some(0) {
        usage_error("--batch must be at least 1", USAGE);
    }
    if frontend.queue_capacity == 0 {
        usage_error("--queue must be at least 1", USAGE);
    }
    if blocking && listen.is_some() {
        usage_error("--blocking applies to stdin mode only", USAGE);
    }
    if config.quantized && !config.batch_inference {
        usage_error(
            "--quantized implies batched inference; drop --no-batch-inference",
            USAGE,
        );
    }
    // The pipelined front end can collect a fuller batch without
    // stalling anyone (its batch-wait timeout bounds the delay), so it
    // defaults higher; the blocking loop answers nothing until a batch
    // fills, so it keeps the pre-pipeline default of one per line.
    frontend.batch_size = batch.unwrap_or(frontend.batch_size);
    let blocking_batch = batch.unwrap_or(1);
    frontend.batch_wait = Duration::from_micros(batch_wait_us);
    frontend.max_line_bytes = config.max_request_bytes;
    // Asking for a trace file without a sampling rate means "trace
    // everything": an explicit --trace-sample still wins.
    if trace_out.is_some() && trace_sample == 0 {
        trace_sample = 1;
    }

    let shutdown = ShutdownFlag::new();
    // Every front end drains on SIGTERM now. Socket mode polls the
    // flag everywhere (nonblocking accept, read timeouts); the stdin
    // modes observe it from their drain side, which answers and
    // flushes everything already read and then returns without waiting
    // on a reader that SA_RESTART keeps parked in a blocking stdin
    // read. Installed *before* the (possibly minutes-long) model
    // startup: a TERM during training used to hit the default
    // disposition and kill the process with exit 143, which
    // orchestrators read as a failed shutdown. Now it marks the flag,
    // startup completes, and the front end drains and exits 0.
    qrc_serve::install_sigterm_bridge(&shutdown);

    // Dynamic device specs load before the service starts: a snapshot
    // warm-load must already know every device its entries name, and
    // traffic can pin loaded devices from the first request.
    if let Some(dir) = &device_dir {
        match qrc_device::DeviceRegistry::load_dir(dir) {
            Ok(loaded) => {
                if config.verbose {
                    eprintln!(
                        "device registry: {} spec(s) loaded from {} ({} devices known)",
                        loaded.len(),
                        dir.display(),
                        qrc_device::DeviceRegistry::len(),
                    );
                }
            }
            Err(e) => {
                eprintln!("error: could not load device dir: {e}");
                std::process::exit(1);
            }
        }
    }

    let start = std::time::Instant::now();
    let service = match CompilationService::start(&config) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("error: could not start service: {e}");
            std::process::exit(1);
        }
    };
    if config.verbose {
        eprintln!(
            "qrc-serve ready: {} policy shards from {} in {:.2}s (cache {} entries × {} shards, {})",
            service.registry().len(),
            config.models_dir.display(),
            start.elapsed().as_secs_f64(),
            config.cache_capacity,
            config.cache_shards,
            if config.parallel {
                "parallel"
            } else {
                "serial"
            },
        );
    }

    // Warmup happens strictly before the front end opens: snapshot
    // import first (cheap, validated against checkpoint identity),
    // then the traffic-log head (pre-compiles whatever the snapshot
    // did not cover), then the warmup is sealed so hits on pre-warmed
    // entries count as warm hits and serving stats start clean.
    if warm_cache {
        match service.load_snapshot() {
            Ok(report) => {
                if config.verbose {
                    eprintln!(
                        "cache snapshot: {} entries imported, {} stale dropped{}{}",
                        report.loaded,
                        report.stale_dropped,
                        if report.quarantined {
                            " (torn snapshot quarantined to .corrupt)"
                        } else {
                            ""
                        },
                        if report.missing {
                            " (no snapshot yet)"
                        } else {
                            ""
                        },
                    );
                }
            }
            Err(e) => {
                eprintln!("error: could not load cache snapshot: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &replay_log {
        match service.replay_log(path) {
            Ok(report) => {
                if config.verbose {
                    eprintln!(
                        "traffic-log warmup: {} logged requests, {} unique jobs, \
                         {} compiled, {} failed{}",
                        report.log_requests,
                        report.unique_jobs,
                        report.compiled,
                        report.failed,
                        if report.missing { " (no log yet)" } else { "" },
                    );
                }
            }
            Err(e) => {
                eprintln!(
                    "error: could not replay traffic log {}: {e}",
                    path.display()
                );
                std::process::exit(1);
            }
        }
    }
    if warm_cache || replay_log.is_some() {
        let warm = service.finish_warmup();
        if config.verbose {
            eprintln!("cache warm: {warm} entries resident before first request");
        }
    }
    if let Some(path) = &log_traffic {
        if let Err(e) = service.set_traffic_log(path) {
            eprintln!("error: could not open traffic log {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    // The server enables the global compute profiler: per-pass,
    // per-section, and per-tick histograms feed the Prometheus
    // exposition. (Library embedders and the bench harness opt in
    // themselves — the gated hooks cost one relaxed load when off.)
    qrc_obs::profile::set_enabled(true);
    if trace_sample > 0 {
        service.enable_tracing(trace_sample);
        if config.verbose {
            eprintln!("tracing 1 in {trace_sample} requests");
        }
    }

    // The scrape endpoint runs beside either transport and stops when
    // the serve call below returns and requests shutdown.
    let metrics_thread = metrics_listen.map(|addr| {
        let listener = match std::net::TcpListener::bind(&addr) {
            Ok(listener) => listener,
            Err(e) => {
                eprintln!("error: could not bind metrics endpoint {addr}: {e}");
                std::process::exit(1);
            }
        };
        match listener.local_addr() {
            Ok(local) => eprintln!("qrc-serve metrics on http://{local}/metrics"),
            Err(_) => eprintln!("qrc-serve metrics on http://{addr}/metrics"),
        }
        let service = Arc::clone(&service);
        let shutdown = shutdown.clone();
        std::thread::spawn(move || qrc_serve::serve_metrics_http(&service, listener, &shutdown))
    });

    let served = match listen {
        Some(addr) => {
            let listener = match std::net::TcpListener::bind(&addr) {
                Ok(listener) => listener,
                Err(e) => {
                    eprintln!("error: could not bind {addr}: {e}");
                    std::process::exit(1);
                }
            };
            // Always printed: with port 0 this is the only way to learn
            // the actual port.
            match listener.local_addr() {
                Ok(local) => eprintln!("qrc-serve listening on {local}"),
                Err(_) => eprintln!("qrc-serve listening on {addr}"),
            }
            qrc_serve::serve_socket(&service, listener, &frontend, &shutdown)
        }
        None if blocking => serve_stdin_blocking(&service, blocking_batch, &shutdown),
        None => qrc_serve::serve_stdin(&service, &frontend, &shutdown),
    };

    // Snapshot-on-drain: persist the hot cache as the last act of a
    // drain (even after a broken stream — what *was* computed is still
    // valid), so the next `--warm-cache` start answers this process's
    // head-of-distribution traffic at hit-rate speed immediately.
    if warm_cache {
        match service.write_snapshot() {
            Ok(written) => {
                if config.verbose {
                    eprintln!(
                        "cache snapshot: {} entries written to {} ({} skipped)",
                        written.entries,
                        written.path.display(),
                        written.skipped
                    );
                }
            }
            Err(e) => eprintln!("warning: could not write cache snapshot: {e}"),
        }
    }
    // Stop the scrape endpoint: the serve call has drained, so the
    // flag may not be set yet (stdin EOF ends without requesting it).
    shutdown.request();
    if let Some(thread) = metrics_thread {
        let _ = thread.join();
    }
    // The trace file is part of the drain contract: whatever was
    // sampled gets written, even after a broken stream.
    if let Some(path) = &trace_out {
        let sink = service.trace_sink();
        match sink.write(path) {
            Ok(()) => {
                if config.verbose {
                    eprintln!(
                        "trace: {} spans from {} sampled requests written to {} ({} dropped)",
                        sink.len(),
                        sink.sampled_requests(),
                        path.display(),
                        sink.dropped_spans(),
                    );
                }
            }
            Err(e) => eprintln!(
                "warning: could not write trace file {}: {e}",
                path.display()
            ),
        }
    }
    // Stats go out even when the session ended on a broken stream:
    // what *was* served is exactly what the operator needs then.
    if print_stats {
        eprintln!("{}", serde_json::to_string_pretty(&service.stats_value()));
    }
    if let Err(e) = served {
        eprintln!("error: serving ended early, remaining requests dropped: {e}");
        std::process::exit(1);
    }
}

/// The pre-pipeline stdin loop, kept for comparison and for callers
/// that want strictly serialized read-then-compute behavior: reads up
/// to `batch_size` lines, schedules them as one batch, repeats. No
/// reader thread, so I/O and compute never overlap.
///
/// Lines are read whole before the service's size limit can reject
/// them (plain `BufRead::lines`), so unlike the pipelined front ends
/// this path buffers an oversized line in memory first — acceptable
/// for its trusted-operator-pipe use, not for network input.
///
/// Lines arrive through a channel fed by a reader thread so the loop
/// can observe an out-of-band shutdown (the SIGTERM bridge) between
/// reads: a TERM-initiated drain answers and flushes everything read,
/// then returns cleanly — exit 0, not 143 — while the reader may stay
/// parked in a blocking stdin read until the process exits.
fn serve_stdin_blocking(
    service: &CompilationService,
    batch_size: usize,
    shutdown: &ShutdownFlag,
) -> std::io::Result<()> {
    let (line_tx, line_rx) =
        std::sync::mpsc::sync_channel::<std::io::Result<String>>(batch_size.max(1));
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let broken = line.is_err();
            if line_tx.send(line).is_err() || broken {
                return;
            }
        }
    });
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut pending: Vec<String> = Vec::with_capacity(batch_size);
    let flush = |pending: &mut Vec<String>, out: &mut dyn Write| {
        if pending.is_empty() {
            return;
        }
        for line in service.handle_lines(pending) {
            let _ = writeln!(out, "{line}");
        }
        let _ = out.flush();
        pending.clear();
    };
    let mut read_error: Option<std::io::Error> = None;
    loop {
        let line = match line_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(Ok(line)) => line,
            Ok(Err(e)) => {
                // A broken input stream (e.g. invalid UTF-8) kills the
                // session: answer what we have, report the error so
                // main exits nonzero — the caller must learn that
                // responses are missing.
                read_error = Some(e);
                break;
            }
            // EOF: the reader thread finished and dropped its sender.
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Quiet stdin: the moment a TERM-initiated drain can
                // finish — everything read is answered below.
                if shutdown.is_requested() {
                    break;
                }
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        // Control lines work in blocking mode too. They are answered
        // in stream order: everything read before them is flushed
        // first, so stats reflect prior lines and shutdown drains.
        if line.contains("\"cmd\"") {
            match InboundLine::parse(&line) {
                Ok(InboundLine::Control(ControlRequest::Stats)) => {
                    flush(&mut pending, &mut out);
                    let _ = writeln!(out, "{}", serde_json::to_string(&service.stats_value()));
                    let _ = out.flush();
                    continue;
                }
                Ok(InboundLine::Control(ControlRequest::Reload)) => {
                    // Stream order matters here too: answer everything
                    // read before the reload with the shard map it was
                    // read under, then swap.
                    flush(&mut pending, &mut out);
                    let _ = writeln!(out, "{}", serde_json::to_string(&service.reload_value()));
                    let _ = out.flush();
                    continue;
                }
                Ok(InboundLine::Control(ControlRequest::Snapshot)) => {
                    // Stream order again: snapshot what was answered
                    // before this line, not what is still pending.
                    flush(&mut pending, &mut out);
                    let _ = writeln!(out, "{}", serde_json::to_string(&service.snapshot_value()));
                    let _ = out.flush();
                    continue;
                }
                Ok(InboundLine::Control(ControlRequest::Metrics)) => {
                    // Stream order: the exposition reflects everything
                    // answered before this line.
                    flush(&mut pending, &mut out);
                    let _ = writeln!(out, "{}", serde_json::to_string(&service.metrics_value()));
                    let _ = out.flush();
                    continue;
                }
                Ok(InboundLine::Control(ControlRequest::Calibrate {
                    device,
                    calibration,
                })) => {
                    // Stream order: everything read before the
                    // calibrate is answered under the old calibration.
                    flush(&mut pending, &mut out);
                    let _ = writeln!(
                        out,
                        "{}",
                        serde_json::to_string(&service.calibrate_value(&device, &calibration))
                    );
                    let _ = out.flush();
                    continue;
                }
                Ok(InboundLine::Control(ControlRequest::Shutdown)) => {
                    flush(&mut pending, &mut out);
                    let _ = writeln!(out, r#"{{"ok":true,"shutting_down":true}}"#);
                    let _ = out.flush();
                    break;
                }
                // `"cmd"` inside an ordinary request's payload: let
                // the scheduler answer it.
                Ok(InboundLine::Request(_)) => {}
                Err(message) => {
                    flush(&mut pending, &mut out);
                    let response = ServeResponse {
                        id: ServeRequest::recover_id(&line),
                        result: Err(message),
                        micros: 1,
                        route: None,
                        rid: None,
                    };
                    service.record(&response);
                    let _ = writeln!(out, "{}", response.to_line());
                    let _ = out.flush();
                    continue;
                }
            }
        }
        pending.push(line);
        if pending.len() >= batch_size {
            flush(&mut pending, &mut out);
        }
    }
    flush(&mut pending, &mut out);
    match read_error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Parses the flag's value into `slot`, exiting with a usage error on
/// missing or malformed input.
fn parse_into<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str, slot: &mut T) {
    match flag_value(args, i, flag) {
        Ok(v) => *slot = v,
        Err(e) => usage_error(&e, USAGE),
    }
}
