//! The `qrc-serve` binary: a newline-delimited JSON compilation
//! service on stdin/stdout.
//!
//! ```text
//! cargo run --release -p qrc-serve --bin qrc-serve -- [flags]
//!
//! flags:
//!   --models DIR        checkpoint directory            (default models/)
//!   --timesteps N       training budget per missing model (default 8000)
//!   --seed N            master seed                     (default 3)
//!   --train-max-qubits N  training-suite width for missing models (default 6)
//!   --cache-capacity N  result cache entries            (default 4096)
//!   --cache-shards N    cache shards                    (default 16)
//!   --batch N           group up to N stdin lines per scheduled batch
//!                       (default 1 = one batch per line)
//!   --serial            compute cache misses serially (results identical)
//!   --stats             print aggregate metrics JSON to stderr at EOF
//!   --quiet             suppress startup/training progress
//! ```
//!
//! Protocol: one request object per line in, one response per line
//! out, in order. See the crate docs for the field reference.

use std::io::{BufRead, Write};

use qrc_serve::cliargs::{flag_value, usage_error};
use qrc_serve::{CompilationService, ServiceConfig};

const USAGE: &str = "usage: qrc-serve [--models DIR] [--timesteps N] [--seed N] \
                     [--train-max-qubits N] [--cache-capacity N] [--cache-shards N] \
                     [--batch N] [--serial] [--stats] [--quiet]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServiceConfig::default();
    let mut batch_size = 1usize;
    let mut print_stats = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--models" => match flag_value::<String>(&args, &mut i, "models") {
                Ok(dir) => config.models_dir = dir.into(),
                Err(e) => usage_error(&e, USAGE),
            },
            "--timesteps" => parse_into(&args, &mut i, "timesteps", &mut config.timesteps),
            "--seed" => parse_into(&args, &mut i, "seed", &mut config.seed),
            "--train-max-qubits" => parse_into(
                &args,
                &mut i,
                "train-max-qubits",
                &mut config.train_max_qubits,
            ),
            "--cache-capacity" => {
                parse_into(&args, &mut i, "cache-capacity", &mut config.cache_capacity)
            }
            "--cache-shards" => parse_into(&args, &mut i, "cache-shards", &mut config.cache_shards),
            "--batch" => parse_into(&args, &mut i, "batch", &mut batch_size),
            "--serial" => config.parallel = false,
            "--stats" => print_stats = true,
            "--quiet" => config.verbose = false,
            other => usage_error(&format!("unknown flag `{other}`"), USAGE),
        }
        i += 1;
    }
    if batch_size == 0 {
        usage_error("--batch must be at least 1", USAGE);
    }

    let start = std::time::Instant::now();
    let service = match CompilationService::start(&config) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("error: could not start service: {e}");
            std::process::exit(1);
        }
    };
    if config.verbose {
        eprintln!(
            "qrc-serve ready: {} models from {} in {:.2}s (cache {} entries × {} shards, {})",
            service.registry().len(),
            config.models_dir.display(),
            start.elapsed().as_secs_f64(),
            config.cache_capacity,
            config.cache_shards,
            if config.parallel {
                "parallel"
            } else {
                "serial"
            },
        );
    }

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut pending: Vec<String> = Vec::with_capacity(batch_size);
    let flush = |pending: &mut Vec<String>, out: &mut dyn Write| {
        if pending.is_empty() {
            return;
        }
        for line in service.handle_lines(pending) {
            let _ = writeln!(out, "{line}");
        }
        let _ = out.flush();
        pending.clear();
    };
    let mut read_error: Option<std::io::Error> = None;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                // A broken input stream (e.g. invalid UTF-8) kills the
                // session: answer what we have, say why, exit nonzero
                // so the caller knows responses are missing.
                read_error = Some(e);
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        pending.push(line);
        if pending.len() >= batch_size {
            flush(&mut pending, &mut out);
        }
    }
    flush(&mut pending, &mut out);

    if print_stats {
        eprintln!(
            "{}",
            serde_json::to_string_pretty(&service.metrics().to_value())
        );
    }
    if let Some(e) = read_error {
        eprintln!("error: stdin read failed, remaining requests dropped: {e}");
        std::process::exit(1);
    }
}

/// Parses the flag's value into `slot`, exiting with a usage error on
/// missing or malformed input.
fn parse_into<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str, slot: &mut T) {
    match flag_value(args, i, flag) {
        Ok(v) => *slot = v,
        Err(e) => usage_error(&e, USAGE),
    }
}
