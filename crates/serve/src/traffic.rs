//! Synthetic traffic generation for load tests and the `serve`
//! benchmark target: a deterministic request mix over the paper's
//! benchmark suite with realistic skew (a few hot circuits dominate,
//! so a result cache has something to do).

use qrc_benchgen::paper_suite;
use qrc_circuit::qasm;
use qrc_device::{Device, DeviceId};
use qrc_predictor::RewardKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::protocol::ServeRequest;

/// Shape of one synthetic traffic mix.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Number of requests to generate.
    pub requests: usize,
    /// Smallest benchmark width drawn from.
    pub min_qubits: u32,
    /// Largest benchmark width drawn from.
    pub max_qubits: u32,
    /// RNG seed; equal configs generate byte-identical mixes.
    pub seed: u64,
    /// Popularity skew exponent ≥ 1: request probability concentrates
    /// on a prefix of the suite as this grows (1 = uniform). The
    /// default of 3 makes roughly half of all traffic target ~20% of
    /// the circuits — enough repetition for caches to matter.
    pub skew: f64,
    /// Fraction of requests that pin a target device.
    pub pin_fraction: f64,
    /// Width skew: fraction of requests forced into the narrowest
    /// width band the suite contains (real fleets see small hot
    /// circuits dominate). 0 disables the skew — and preserves the
    /// exact RNG stream of pre-skew mixes.
    pub narrow_fraction: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            requests: 400,
            min_qubits: 2,
            max_qubits: 6,
            seed: 3,
            skew: 3.0,
            pin_fraction: 0.15,
            narrow_fraction: 0.0,
        }
    }
}

/// Generates the deterministic request mix described by `config`.
///
/// # Panics
///
/// Panics when `config.skew < 1.0` (or is NaN). The exponent used to
/// be clamped silently with `skew.max(1.0)`, which made a sub-uniform
/// request (`skew 0.5` spreads traffic *flatter* than uniform) produce
/// the default-looking skew-1 mix instead — a load test that quietly
/// measures the wrong workload. An invalid shape is a caller bug worth
/// failing loudly on.
pub fn synthetic_mix(config: &TrafficConfig) -> Vec<ServeRequest> {
    assert!(
        config.skew >= 1.0,
        "traffic skew must be >= 1.0 (1 = uniform), got {}",
        config.skew
    );
    let suite = paper_suite(config.min_qubits, config.max_qubits);
    assert!(!suite.is_empty(), "traffic mix needs a non-empty suite");
    let texts: Vec<String> = suite.iter().map(qasm::to_qasm).collect();
    // The indices of the narrowest width band present, for the
    // `narrow_fraction` skew.
    let narrowest = suite
        .iter()
        .map(|qc| crate::shard::WidthBand::of_width(qc.num_qubits()))
        .min()
        .expect("non-empty suite");
    let narrow_indices: Vec<usize> = suite
        .iter()
        .enumerate()
        .filter(|(_, qc)| crate::shard::WidthBand::of_width(qc.num_qubits()) == narrowest)
        .map(|(i, _)| i)
        .collect();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7261_6666_6963_0001);
    (0..config.requests)
        .map(|i| {
            // Power-law popularity: u^skew concentrates mass near 0.
            let u: f64 = rng.gen_range(0.0..1.0);
            let mut index =
                ((u.powf(config.skew) * suite.len() as f64) as usize).min(suite.len() - 1);
            if config.narrow_fraction > 0.0 && rng.gen_range(0.0..1.0) < config.narrow_fraction {
                // Redirect into the narrow band, keeping the power-law
                // popularity within it.
                let slot = ((u.powf(config.skew) * narrow_indices.len() as f64) as usize)
                    .min(narrow_indices.len() - 1);
                index = narrow_indices[slot];
            }
            let objective = RewardKind::ALL[rng.gen_range(0..RewardKind::ALL.len())];
            let device_pin = if rng.gen_range(0.0..1.0) < config.pin_fraction {
                pick_pin(&mut rng, suite[index].num_qubits())
            } else {
                None
            };
            ServeRequest {
                id: Some(format!("req-{i}")),
                qasm: texts[index].clone(),
                objective,
                device_pin,
            }
        })
        .collect()
}

/// Picks a pin among devices wide enough for the circuit.
fn pick_pin(rng: &mut StdRng, circuit_width: u32) -> Option<DeviceId> {
    let fitting: Vec<DeviceId> = DeviceId::ALL
        .into_iter()
        .filter(|&d| Device::get(d).num_qubits() >= circuit_width)
        .collect();
    if fitting.is_empty() {
        None
    } else {
        Some(fitting[rng.gen_range(0..fitting.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix_is_deterministic_and_skewed() {
        let config = TrafficConfig {
            requests: 200,
            ..TrafficConfig::default()
        };
        let a = synthetic_mix(&config);
        let b = synthetic_mix(&config);
        assert_eq!(a, b, "same config must generate the same mix");
        assert_eq!(a.len(), 200);

        // Skew produces repeats: far fewer unique circuits than requests.
        let unique: HashSet<&str> = a.iter().map(|r| r.qasm.as_str()).collect();
        assert!(
            unique.len() < a.len() / 2,
            "expected repetition, got {} unique of {}",
            unique.len(),
            a.len()
        );

        // Pins only land on devices that fit the circuit.
        for request in &a {
            if let Some(pin) = request.device_pin {
                let circuit = qasm::from_qasm(&request.qasm).unwrap();
                assert!(Device::get(pin).num_qubits() >= circuit.num_qubits());
            }
        }
        // All three objectives appear.
        let objectives: HashSet<&str> = a.iter().map(|r| r.objective.name()).collect();
        assert_eq!(objectives.len(), 3);
    }

    #[test]
    fn narrow_fraction_skews_widths() {
        let base = TrafficConfig {
            requests: 300,
            min_qubits: 2,
            max_qubits: 8,
            ..TrafficConfig::default()
        };
        let width_of = |r: &ServeRequest| qasm::from_qasm(&r.qasm).unwrap().num_qubits();
        let narrow_share = |mix: &[ServeRequest]| {
            mix.iter().filter(|r| width_of(r) <= 4).count() as f64 / mix.len() as f64
        };
        let unskewed = narrow_share(&synthetic_mix(&base));
        let skewed = narrow_share(&synthetic_mix(&TrafficConfig {
            narrow_fraction: 0.9,
            ..base.clone()
        }));
        assert!(
            skewed > unskewed && skewed > 0.8,
            "narrow_fraction must concentrate traffic on narrow widths \
             (unskewed {unskewed:.2}, skewed {skewed:.2})"
        );
        // Skewed mixes are deterministic too.
        let again = synthetic_mix(&TrafficConfig {
            narrow_fraction: 0.9,
            ..base
        });
        assert_eq!(
            again,
            synthetic_mix(&TrafficConfig {
                narrow_fraction: 0.9,
                requests: 300,
                min_qubits: 2,
                max_qubits: 8,
                ..TrafficConfig::default()
            })
        );
    }

    #[test]
    fn skew_boundary_of_one_is_accepted_and_uniform_ish() {
        // skew == 1.0 is the documented uniform boundary: it must be
        // accepted and spread traffic across far more of the suite than
        // the default skew of 3 does.
        let uniform = synthetic_mix(&TrafficConfig {
            skew: 1.0,
            ..TrafficConfig::default()
        });
        let skewed = synthetic_mix(&TrafficConfig::default());
        let unique = |mix: &[ServeRequest]| {
            mix.iter()
                .map(|r| r.qasm.as_str())
                .collect::<HashSet<_>>()
                .len()
        };
        assert!(
            unique(&uniform) > unique(&skewed),
            "skew 1 must spread wider than skew 3 ({} vs {})",
            unique(&uniform),
            unique(&skewed)
        );
    }

    #[test]
    #[should_panic(expected = "traffic skew must be >= 1.0")]
    fn sub_uniform_skew_is_rejected_not_clamped() {
        synthetic_mix(&TrafficConfig {
            skew: 0.99,
            ..TrafficConfig::default()
        });
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthetic_mix(&TrafficConfig::default());
        let b = synthetic_mix(&TrafficConfig {
            seed: 99,
            ..TrafficConfig::default()
        });
        assert_ne!(a, b);
    }
}
