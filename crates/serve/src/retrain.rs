//! Offline retraining from served traffic — the closed loop.
//!
//! [`run_retrain`] connects the two halves the service already has:
//! the traffic log (a recording of the real workload distribution)
//! and zero-downtime checkpoint hot-swap (`rescan()` behind
//! `{"cmd":"reload"}`). The flow:
//!
//! 1. read the log, split it deterministically into a curriculum
//!    slice and a **held-out** gate slice ([`split_log`]),
//! 2. group requests by the shard that actually serves them (the same
//!    fallback chain the scheduler routes with — [`shard_slice`]),
//! 3. per shard, build a frequency-weighted curriculum from the head
//!    of the distribution ([`build_curriculum`]): hot circuits appear
//!    in the fine-tuning suite proportionally to how often they were
//!    requested,
//! 4. fine-tune the incumbent checkpoint on its curriculum with the
//!    entropy bonus raised — action-diversity shaping, because a
//!    policy fine-tuned on a narrow hot set otherwise collapses onto
//!    one action (Fösel et al., arXiv:2103.07585),
//! 5. hand the candidate to the promotion gate ([`gate_candidate`]):
//!    **no worse on reward** over the held-out slice, **strictly
//!    better on the logged head**, and **rollout entropy above a
//!    floor** (a collapsed policy never ships, however good its
//!    curriculum reward looks),
//! 6. install gate-passed candidates over the live checkpoint
//!    (same-directory atomic rename) and quarantine the rest to
//!    `*.rejected.json` — the incumbent keeps serving byte-identical
//!    answers either way.
//!
//! Promotion deliberately stops at the file system: the serving
//! process picks the new checkpoint up through its existing
//! `{"cmd":"reload"}` path, whose generation-stamped cache keys
//! guarantee no stale answer survives the swap. The report summary is
//! persisted beside the checkpoints ([`RETRAIN_STATE_FILE`]) and
//! surfaced by the service under the `retrain` block of
//! `{"cmd":"stats"}` after the next reload.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use qrc_circuit::{qasm, QuantumCircuit};
use qrc_device::DeviceId;
use qrc_predictor::{atomic_write, task_seed, FineTuneConfig, PersistError, TrainedPredictor};
use serde_json::Value;

use crate::persist::{head_of_distribution_counts, TrafficLog};
use crate::protocol::ServeRequest;
use crate::registry::ModelRegistry;
use crate::shard::ShardKey;

/// File name (inside the models directory) the retrain flow persists
/// its last report summary to; `{"cmd":"stats"}` surfaces it as the
/// `retrain` block after the next reload.
pub const RETRAIN_STATE_FILE: &str = "retrain_state.json";

/// Configuration of one offline retraining run.
#[derive(Debug, Clone)]
pub struct RetrainConfig {
    /// Directory holding the live checkpoints (and receiving candidate
    /// / quarantined / state files).
    pub models_dir: PathBuf,
    /// The traffic log to learn from (the service's `--log-traffic`
    /// path).
    pub log_path: PathBuf,
    /// Unique jobs kept from the head of each shard's distribution.
    pub curriculum_cap: usize,
    /// Per-unique-job cap on frequency repetition in the curriculum (a
    /// single viral circuit must not drown out the rest of the head).
    pub max_repeats: usize,
    /// Every `holdout_every`-th logged request is held out for the
    /// promotion gate instead of entering the curriculum (min 2).
    pub holdout_every: usize,
    /// Fine-tuning budget per shard, in environment steps.
    pub timesteps: usize,
    /// Reward-shaping step penalty for the fine-tuning environment.
    pub step_penalty: f64,
    /// Entropy-bonus coefficient for fine-tuning (the action-diversity
    /// shaping; the incumbent's own coefficient is overridden).
    pub entropy_coef: f64,
    /// Minimum mean rollout entropy (nats, over the head circuits) a
    /// candidate must keep to be promotable.
    pub entropy_floor: f64,
    /// Shards with fewer curriculum-slice requests than this are
    /// skipped (too little signal to fine-tune on).
    pub min_requests: usize,
    /// Master seed: drives per-shard fine-tuning and gate-replay seeds.
    pub seed: u64,
    /// Restrict the run to these shards (empty = every shard with a
    /// checkpoint in the models directory).
    pub shards: Vec<ShardKey>,
    /// Print per-shard progress to stderr.
    pub verbose: bool,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        RetrainConfig {
            models_dir: PathBuf::from("models"),
            log_path: PathBuf::from("traffic.ndjson"),
            curriculum_cap: 32,
            max_repeats: 8,
            holdout_every: 4,
            timesteps: 2_000,
            step_penalty: 0.005,
            entropy_coef: 0.03,
            entropy_floor: 0.05,
            min_requests: 4,
            seed: 17,
            shards: Vec::new(),
            verbose: false,
        }
    }
}

/// Splits a request log into `(curriculum slice, held-out slice)`:
/// every `holdout_every`-th line (by position, so the split is
/// deterministic for a fixed log) goes to the held-out gate slice and
/// never into the curriculum — the gate must score candidates on
/// traffic they did not fine-tune on. `holdout_every` is clamped to at
/// least 2 so neither slice can swallow the whole log.
pub fn split_log(
    requests: &[ServeRequest],
    holdout_every: usize,
) -> (Vec<ServeRequest>, Vec<ServeRequest>) {
    let every = holdout_every.max(2);
    let mut curriculum = Vec::new();
    let mut holdout = Vec::new();
    for (i, request) in requests.iter().enumerate() {
        if (i + 1) % every == 0 {
            holdout.push(request.clone());
        } else {
            curriculum.push(request.clone());
        }
    }
    (curriculum, holdout)
}

/// The shard that would *serve* `request` against a registry holding
/// exactly `available` shards — the scheduler's routing reproduced
/// offline: the most specific requested key, walked down its fallback
/// chain to the first registered shard. `None` when the QASM does not
/// parse or no registered shard covers the objective.
pub fn serving_shard(request: &ServeRequest, available: &[ShardKey]) -> Option<ShardKey> {
    let circuit = qasm::from_qasm(&request.qasm).ok()?;
    let requested =
        ShardKey::for_request(request.objective, request.device_pin, circuit.num_qubits());
    requested
        .fallback_chain()
        .into_iter()
        .find(|key| available.contains(key))
}

/// The slice of `requests` that route to `key` under `available` —
/// never a request another shard would serve, so each specialist
/// fine-tunes only on traffic it actually answers.
pub fn shard_slice(
    requests: &[ServeRequest],
    key: ShardKey,
    available: &[ShardKey],
) -> Vec<ServeRequest> {
    requests
        .iter()
        .filter(|r| serving_shard(r, available) == Some(key))
        .cloned()
        .collect()
}

/// A frequency-weighted fine-tuning curriculum for one shard.
#[derive(Debug, Clone)]
pub struct Curriculum {
    /// Training circuits, each repeated `min(count, max_repeats)`
    /// times — the environment samples uniformly, so repetition *is*
    /// the frequency weighting.
    pub circuits: Vec<QuantumCircuit>,
    /// The head of the shard's distribution with observed counts
    /// (unique requests, frequency-ranked) — also the gate's
    /// "logged head" evidence.
    pub head: Vec<(ServeRequest, usize)>,
}

/// Builds the curriculum for one shard slice: the head of its request
/// distribution (unique, frequency-ranked, capped at `cap`), each
/// parsed circuit repeated by its capped observed count. Deterministic
/// for a fixed slice; requests whose QASM fails to parse are dropped.
pub fn build_curriculum(slice: &[ServeRequest], cap: usize, max_repeats: usize) -> Curriculum {
    let head = head_of_distribution_counts(slice, cap);
    let mut circuits = Vec::new();
    for (request, count) in &head {
        if let Ok(circuit) = qasm::from_qasm(&request.qasm) {
            for _ in 0..(*count).min(max_repeats.max(1)) {
                circuits.push(circuit.clone());
            }
        }
    }
    Curriculum { circuits, head }
}

/// The promotion gate's verdict on one candidate, with the evidence it
/// was reached on.
#[derive(Debug, Clone)]
pub struct GateDecision {
    /// `true` when every gate criterion passed.
    pub promoted: bool,
    /// Why the gate refused (`None` when promoted).
    pub reason: Option<String>,
    /// Incumbent's frequency-weighted mean reward on the logged head.
    pub incumbent_head_reward: f64,
    /// Candidate's frequency-weighted mean reward on the logged head.
    pub candidate_head_reward: f64,
    /// Incumbent's mean reward over the held-out slice.
    pub incumbent_holdout_reward: f64,
    /// Candidate's mean reward over the held-out slice.
    pub candidate_holdout_reward: f64,
    /// Incumbent's mean rollout entropy over the head circuits (nats).
    pub incumbent_entropy: f64,
    /// Candidate's mean rollout entropy over the head circuits (nats).
    pub candidate_entropy: f64,
}

/// One compile job reconstructed from a logged request for gate
/// replay.
struct GateJob {
    circuit: QuantumCircuit,
    pin: Option<DeviceId>,
    weight: f64,
}

/// Parses unique gate-replay jobs (frequency-weighted) out of a
/// request slice.
fn gate_jobs(head: &[(ServeRequest, usize)]) -> Vec<GateJob> {
    head.iter()
        .filter_map(|(request, count)| {
            qasm::from_qasm(&request.qasm).ok().map(|circuit| GateJob {
                circuit,
                pin: request.device_pin,
                weight: *count as f64,
            })
        })
        .collect()
}

/// Weighted mean reward of `model` over `jobs`. Both contenders replay
/// with identical content-derived seeds, so the comparison isolates
/// the policy. An infeasible pin scores 0 for either model alike.
fn weighted_mean_reward(model: &TrainedPredictor, jobs: &[GateJob], seed: u64) -> f64 {
    let total: f64 = jobs.iter().map(|j| j.weight).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for job in jobs {
        let job_seed = task_seed(seed, job.circuit.structural_hash());
        let reward = model
            .compile_request(&job.circuit, job.pin, job_seed)
            .map_or(0.0, |outcome| outcome.reward);
        sum += job.weight * reward;
    }
    sum / total
}

/// Replays candidate vs. incumbent and decides promotion. The three
/// criteria, in the order they are checked:
///
/// 1. **diversity floor** — the candidate's mean rollout entropy over
///    the head circuits must reach `entropy_floor` (refuses
///    action-collapsed policies outright),
/// 2. **no worse on reward** — over the held-out slice the candidate's
///    mean reward must not fall below the incumbent's (vacuously true
///    when the held-out slice is empty),
/// 3. **strictly better on the logged head** — the candidate must beat
///    the incumbent's frequency-weighted mean reward on the head (an
///    empty head can never promote: there is no evidence to ship on).
pub fn gate_candidate(
    incumbent: &TrainedPredictor,
    candidate: &TrainedPredictor,
    head: &[(ServeRequest, usize)],
    holdout: &[ServeRequest],
    seed: u64,
    entropy_floor: f64,
) -> GateDecision {
    let head_jobs = gate_jobs(head);
    // The held-out slice gates on its own distribution: unique jobs
    // weighted by how often they were actually asked.
    let holdout_head = head_of_distribution_counts(holdout, usize::MAX);
    let holdout_jobs = gate_jobs(&holdout_head);

    let head_circuits: Vec<QuantumCircuit> = head_jobs.iter().map(|j| j.circuit.clone()).collect();
    let incumbent_entropy = incumbent.mean_rollout_entropy(&head_circuits);
    let candidate_entropy = candidate.mean_rollout_entropy(&head_circuits);
    let incumbent_head_reward = weighted_mean_reward(incumbent, &head_jobs, seed);
    let candidate_head_reward = weighted_mean_reward(candidate, &head_jobs, seed);
    let incumbent_holdout_reward = weighted_mean_reward(incumbent, &holdout_jobs, seed);
    let candidate_holdout_reward = weighted_mean_reward(candidate, &holdout_jobs, seed);

    let reason = if head_jobs.is_empty() {
        Some("empty curriculum head: no evidence to promote on".to_string())
    } else if candidate_entropy < entropy_floor {
        Some(format!(
            "action entropy {candidate_entropy:.4} nats below the {entropy_floor:.4} floor \
             (policy collapse)"
        ))
    } else if !holdout_jobs.is_empty() && candidate_holdout_reward + 1e-9 < incumbent_holdout_reward
    {
        Some(format!(
            "held-out reward regressed: {candidate_holdout_reward:.6} < \
             {incumbent_holdout_reward:.6}"
        ))
    } else if candidate_head_reward <= incumbent_head_reward + 1e-9 {
        Some(format!(
            "no strict improvement on the logged head: {candidate_head_reward:.6} vs \
             {incumbent_head_reward:.6}"
        ))
    } else {
        None
    };
    GateDecision {
        promoted: reason.is_none(),
        reason,
        incumbent_head_reward,
        candidate_head_reward,
        incumbent_holdout_reward,
        candidate_holdout_reward,
        incumbent_entropy,
        candidate_entropy,
    }
}

/// Where a shard's candidate checkpoint is written while the gate
/// deliberates. The name deliberately does not parse as a shard
/// checkpoint (`ShardKey::from_file_name` rejects it), so a concurrent
/// `rescan()` never picks an ungated candidate up.
pub fn candidate_path(dir: &Path, key: ShardKey) -> PathBuf {
    dir.join(key.file_name().replace(".json", ".candidate.json"))
}

/// Where a gate-rejected candidate is quarantined (again invisible to
/// `rescan()`), kept on disk for post-mortem instead of deleted.
pub fn rejected_path(dir: &Path, key: ShardKey) -> PathBuf {
    dir.join(key.file_name().replace(".json", ".rejected.json"))
}

/// Applies one gate verdict to the files on disk: promotion renames
/// the candidate over the live checkpoint (same-directory atomic
/// rename — the next `rescan()` sees either the old checkpoint or the
/// complete new one, never a torn hybrid); rejection quarantines it to
/// [`rejected_path`]. Returns where the candidate ended up.
///
/// # Errors
///
/// Returns the underlying I/O error; the live checkpoint is untouched
/// on every rejection path.
pub fn install_or_quarantine(
    promoted: bool,
    dir: &Path,
    key: ShardKey,
) -> Result<PathBuf, PersistError> {
    let candidate = candidate_path(dir, key);
    let target = if promoted {
        ModelRegistry::model_path(dir, key)
    } else {
        let rejected = rejected_path(dir, key);
        // Only one quarantined candidate is kept per shard.
        let _ = std::fs::remove_file(&rejected);
        rejected
    };
    std::fs::rename(&candidate, &target)?;
    Ok(target)
}

/// One shard's outcome within a retraining run.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The shard retrained.
    pub key: ShardKey,
    /// Curriculum-slice requests that routed to this shard.
    pub log_requests: usize,
    /// Unique jobs in the curriculum head.
    pub curriculum_unique: usize,
    /// Curriculum length after frequency repetition.
    pub curriculum_len: usize,
    /// Held-out requests that routed to this shard.
    pub holdout_requests: usize,
    /// The gate's verdict and evidence.
    pub gate: GateDecision,
    /// Where the candidate ended up (live checkpoint or quarantine).
    pub candidate_path: PathBuf,
}

impl ShardOutcome {
    /// Renders the outcome for the report JSON.
    pub fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("shard".to_string(), Value::from(self.key.name())),
            ("log_requests".to_string(), Value::from(self.log_requests)),
            (
                "curriculum_unique".to_string(),
                Value::from(self.curriculum_unique),
            ),
            (
                "curriculum_len".to_string(),
                Value::from(self.curriculum_len),
            ),
            (
                "holdout_requests".to_string(),
                Value::from(self.holdout_requests),
            ),
            ("promoted".to_string(), Value::from(self.gate.promoted)),
            (
                "incumbent_head_reward".to_string(),
                Value::from(self.gate.incumbent_head_reward),
            ),
            (
                "candidate_head_reward".to_string(),
                Value::from(self.gate.candidate_head_reward),
            ),
            (
                "incumbent_holdout_reward".to_string(),
                Value::from(self.gate.incumbent_holdout_reward),
            ),
            (
                "candidate_holdout_reward".to_string(),
                Value::from(self.gate.candidate_holdout_reward),
            ),
            (
                "incumbent_entropy".to_string(),
                Value::from(self.gate.incumbent_entropy),
            ),
            (
                "candidate_entropy".to_string(),
                Value::from(self.gate.candidate_entropy),
            ),
            (
                "candidate_path".to_string(),
                Value::from(self.candidate_path.display().to_string()),
            ),
        ];
        if let Some(reason) = &self.gate.reason {
            pairs.push(("rejection".to_string(), Value::from(reason.clone())));
        }
        Value::Object(pairs)
    }
}

/// What one retraining run did, across every considered shard.
#[derive(Debug, Clone, Default)]
pub struct RetrainReport {
    /// Parseable request lines read from the traffic log.
    pub log_requests: usize,
    /// Requests held out for the promotion gate.
    pub holdout_requests: usize,
    /// Shards looked at (with a live checkpoint).
    pub shards_considered: usize,
    /// Shards skipped for too little logged traffic.
    pub skipped: usize,
    /// Candidates fine-tuned and gated.
    pub candidates: usize,
    /// Candidates installed over their live checkpoint.
    pub promoted: usize,
    /// Candidates quarantined by the gate.
    pub rejected: usize,
    /// The entropy floor the gate enforced (nats).
    pub entropy_floor: f64,
    /// Smallest candidate entropy observed (`None` with no candidates).
    pub min_candidate_entropy: Option<f64>,
    /// Per-shard outcomes, in shard order.
    pub outcomes: Vec<ShardOutcome>,
}

impl RetrainReport {
    /// Renders the full report (summary + per-shard outcomes).
    pub fn to_value(&self) -> Value {
        let mut pairs = summary_pairs(self);
        pairs.push((
            "shards".to_string(),
            Value::Array(self.outcomes.iter().map(ShardOutcome::to_value).collect()),
        ));
        Value::Object(pairs)
    }

    /// Renders the aggregate counters only — what the service embeds
    /// as the `retrain` block of `{"cmd":"stats"}`.
    pub fn summary_value(&self) -> Value {
        Value::Object(summary_pairs(self))
    }
}

fn summary_pairs(report: &RetrainReport) -> Vec<(String, Value)> {
    vec![
        ("log_requests".to_string(), Value::from(report.log_requests)),
        (
            "holdout_requests".to_string(),
            Value::from(report.holdout_requests),
        ),
        (
            "shards_considered".to_string(),
            Value::from(report.shards_considered),
        ),
        ("skipped".to_string(), Value::from(report.skipped)),
        ("candidates".to_string(), Value::from(report.candidates)),
        ("promoted".to_string(), Value::from(report.promoted)),
        ("rejected".to_string(), Value::from(report.rejected)),
        (
            "entropy_floor".to_string(),
            Value::from(report.entropy_floor),
        ),
        (
            "min_candidate_entropy".to_string(),
            report
                .min_candidate_entropy
                .map_or(Value::Null, Value::from),
        ),
    ]
}

/// Reads the last persisted retrain report summary from a models
/// directory, if one exists (unreadable/garbled files read as `None` —
/// the stats block is best-effort observability, never a serving
/// error).
pub fn load_retrain_state(dir: &Path) -> Option<Value> {
    let text = std::fs::read_to_string(dir.join(RETRAIN_STATE_FILE)).ok()?;
    serde_json::from_str(&text).ok()
}

/// Runs the full offline retraining flow described in the module docs
/// and persists the report summary to [`RETRAIN_STATE_FILE`].
///
/// # Errors
///
/// Returns [`PersistError`] when the traffic log or a checkpoint
/// cannot be read, or candidate files cannot be written. Per-shard
/// gate rejections are not errors — they are the gate working.
pub fn run_retrain(config: &RetrainConfig) -> Result<RetrainReport, PersistError> {
    let requests = TrafficLog::read_requests(&config.log_path)?;
    let registry = ModelRegistry::load(&config.models_dir)?;
    let available = registry.keys();
    let targets: Vec<ShardKey> = if config.shards.is_empty() {
        available.clone()
    } else {
        config.shards.clone()
    };
    let (curriculum_slice, holdout_slice) = split_log(&requests, config.holdout_every);

    let mut report = RetrainReport {
        log_requests: requests.len(),
        holdout_requests: holdout_slice.len(),
        entropy_floor: config.entropy_floor,
        ..RetrainReport::default()
    };
    // Route every logged request once, exactly as the scheduler would.
    let mut by_shard: HashMap<ShardKey, Vec<ServeRequest>> = HashMap::new();
    for request in &curriculum_slice {
        if let Some(key) = serving_shard(request, &available) {
            by_shard.entry(key).or_default().push(request.clone());
        }
    }
    let mut holdout_by_shard: HashMap<ShardKey, Vec<ServeRequest>> = HashMap::new();
    for request in &holdout_slice {
        if let Some(key) = serving_shard(request, &available) {
            holdout_by_shard
                .entry(key)
                .or_default()
                .push(request.clone());
        }
    }

    for key in targets {
        if !available.contains(&key) {
            continue;
        }
        report.shards_considered += 1;
        let slice = by_shard.get(&key).map_or(&[] as &[_], Vec::as_slice);
        if slice.len() < config.min_requests {
            if config.verbose {
                eprintln!(
                    "retrain: skipping `{}` ({} logged requests < {})",
                    key.name(),
                    slice.len(),
                    config.min_requests
                );
            }
            report.skipped += 1;
            continue;
        }
        let curriculum = build_curriculum(slice, config.curriculum_cap, config.max_repeats);
        if curriculum.circuits.is_empty() {
            report.skipped += 1;
            continue;
        }
        let live_path = ModelRegistry::model_path(&config.models_dir, key);
        let incumbent = TrainedPredictor::load(&live_path)?;
        if config.verbose {
            eprintln!(
                "retrain: fine-tuning `{}` on {} curriculum circuits ({} unique) for {} steps…",
                key.name(),
                curriculum.circuits.len(),
                curriculum.head.len(),
                config.timesteps
            );
        }
        let fine_tune = FineTuneConfig {
            total_timesteps: config.timesteps,
            seed: task_seed(config.seed, key.tag()),
            step_penalty: config.step_penalty,
            entropy_coef: Some(config.entropy_coef),
        };
        let candidate =
            incumbent.fine_tune_with_progress(curriculum.circuits.clone(), &fine_tune, |_| {});
        candidate.save(&candidate_path(&config.models_dir, key))?;
        report.candidates += 1;

        let holdout = holdout_by_shard
            .get(&key)
            .map_or(&[] as &[_], Vec::as_slice);
        let gate = gate_candidate(
            &incumbent,
            &candidate,
            &curriculum.head,
            holdout,
            task_seed(config.seed, key.tag() ^ 0xD1CE),
            config.entropy_floor,
        );
        report.min_candidate_entropy = Some(
            report
                .min_candidate_entropy
                .map_or(gate.candidate_entropy, |m| m.min(gate.candidate_entropy)),
        );
        let landed = install_or_quarantine(gate.promoted, &config.models_dir, key)?;
        if gate.promoted {
            report.promoted += 1;
        } else {
            report.rejected += 1;
        }
        if config.verbose {
            match &gate.reason {
                None => eprintln!(
                    "retrain: promoted `{}` (head {:.4} → {:.4}, entropy {:.3})",
                    key.name(),
                    gate.incumbent_head_reward,
                    gate.candidate_head_reward,
                    gate.candidate_entropy
                ),
                Some(reason) => eprintln!("retrain: rejected `{}`: {reason}", key.name()),
            }
        }
        report.outcomes.push(ShardOutcome {
            key,
            log_requests: slice.len(),
            curriculum_unique: curriculum.head.len(),
            curriculum_len: curriculum.circuits.len(),
            holdout_requests: holdout.len(),
            gate,
            candidate_path: landed,
        });
    }
    atomic_write(
        &config.models_dir.join(RETRAIN_STATE_FILE),
        (serde_json::to_string(&report.to_value()) + "\n").as_bytes(),
    )?;
    Ok(report)
}
