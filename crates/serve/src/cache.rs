//! The content-addressed result cache: a sharded LRU keyed by
//! (structural circuit hash, device pin, serving model shard).
//!
//! Sharding bounds lock contention: each key maps to one of N
//! independently locked shards, so concurrent lookups from the rayon
//! pool only contend when they collide on a shard. Eviction is LRU per
//! shard via monotone access stamps; the evicting scan is O(shard
//! size), which stays cheap because capacity is split across shards.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use qrc_device::{DeviceId, DeviceRegistry};

use crate::protocol::CompiledResult;
use crate::shard::ShardKey;

/// The content address of one compilation job.
///
/// The *serving shard* is part of the address: two registries that
/// route the same circuit to different policies must never share a
/// cached result, and after a hot-reload changes routing, the new
/// shard recomputes instead of inheriting the old shard's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// `QuantumCircuit::structural_hash` of the parsed request circuit.
    pub circuit_hash: u64,
    /// The requested device pin, if any.
    pub device_pin: Option<DeviceId>,
    /// The shard the request routed to (carries the objective).
    pub shard: ShardKey,
    /// The serving policy's generation stamp: a hot-reload that swaps
    /// a shard's checkpoint bumps it, so the new policy never hits —
    /// and in-flight old-snapshot batches never pollute — the other
    /// generation's entries.
    pub generation: u64,
}

/// Total, collision-free seed tag of a device pin: `0` is reserved for
/// "no pin" and every pin maps to its own nonzero value, resolved
/// through the device registry. Built-ins keep the historical
/// `1 + position-in-ALL` numbering so existing seeds (and therefore
/// cached/persisted answers) are unchanged; dynamic devices get a tag
/// FNV-derived from their canonical *structural* spec — a pure
/// function of the spec, so every replica agrees, and calibration is
/// excluded so a live recalibration does not re-key the cache.
pub fn device_seed_tag(pin: Option<DeviceId>) -> u64 {
    match pin {
        None => 0,
        Some(id) => DeviceRegistry::seed_tag(id),
    }
}

impl CacheKey {
    /// A stable 64-bit mix of the *content and routing* components,
    /// used both for shard selection and as the per-job seed index.
    /// The policy generation is deliberately excluded: rollout seeds
    /// must be a function of request content and shard identity only,
    /// so identical checkpoints answer identically across restarts and
    /// reloads.
    pub fn mix(&self) -> u64 {
        let device_tag = device_seed_tag(self.device_pin);
        // SplitMix64 finalizer over the packed components.
        let mut z = self
            .circuit_hash
            .wrapping_add(self.shard.tag().wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(device_tag.wrapping_mul(0xD1B5_4A32_D192_ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

struct Shard {
    map: HashMap<CacheKey, Entry>,
    /// Monotone access counter; the entry with the smallest stamp is
    /// the least recently used.
    tick: u64,
}

struct Entry {
    stamp: u64,
    /// `true` for entries resident since before the service started
    /// taking traffic (imported from a snapshot or pre-compiled by a
    /// traffic-log replay); hits on them count as *warm* hits.
    warm: bool,
    value: Arc<CompiledResult>,
}

/// Aggregate cache counters (monotone since service start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Of those, served from a pre-warmed entry (snapshot import or
    /// warmup replay) — the restart-warmup payoff, counted apart so
    /// operators can see what the snapshot actually bought.
    pub warm_hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over total lookups (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Hits served from entries computed after startup (the complement
    /// of [`CacheStats::warm_hits`]).
    pub fn cold_hits(&self) -> u64 {
        self.hits.saturating_sub(self.warm_hits)
    }
}

/// A sharded LRU cache of compilation results.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    warm_hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// Creates a cache holding at most ~`capacity` entries across
    /// `shards` shards (both clamped to at least 1; per-shard capacity
    /// rounds up so the nominal total is never undershot).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.max(1).div_ceil(shards);
        ResultCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.mix() % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CompiledResult>> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let stamp = shard.tick;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = stamp;
                let warm = entry.warm;
                let value = Arc::clone(&entry.value);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                if warm {
                    self.warm_hits.fetch_add(1, Ordering::Relaxed);
                }
                Some(value)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the shard's least
    /// recently used entry when over capacity.
    pub fn insert(&self, key: CacheKey, value: Arc<CompiledResult>) {
        let mut evicted = 0u64;
        {
            let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
            shard.tick += 1;
            let stamp = shard.tick;
            shard.map.insert(
                key,
                Entry {
                    stamp,
                    warm: false,
                    value,
                },
            );
            while shard.map.len() > self.per_shard_capacity {
                if let Some(oldest) = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(k, _)| *k)
                {
                    shard.map.remove(&oldest);
                    evicted += 1;
                } else {
                    break;
                }
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drops every entry whose key fails `keep`, returning how many
    /// were removed. Used by hot-reload to invalidate results computed
    /// by policy shards whose checkpoint changed — without a purge, a
    /// swapped-in model would keep answering popular circuits with the
    /// old policy's cached output forever.
    pub fn retain(&self, keep: impl Fn(&CacheKey) -> bool) -> u64 {
        self.retain_entries(|key, _| keep(key))
    }

    /// Like [`ResultCache::retain`] but the predicate also sees the
    /// cached result. Calibration invalidation needs this: an unpinned
    /// fidelity-keyed entry carries no device in its *key* — the device
    /// the rollout chose lives in the cached *payload* — so purging
    /// "everything whose answer depends on device X's calibration"
    /// must inspect values.
    pub fn retain_entries(&self, keep: impl Fn(&CacheKey, &CompiledResult) -> bool) -> u64 {
        let mut removed = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            let before = shard.map.len();
            shard.map.retain(|key, entry| keep(key, &entry.value));
            removed += (before - shard.map.len()) as u64;
        }
        removed
    }

    /// Every resident entry in *eviction order*: shards in index
    /// order, each shard's entries least-recently-used first.
    ///
    /// Re-inserting the returned sequence in order into a cache with
    /// the same shard count reproduces each shard's LRU order exactly
    /// (recency stamps are per shard, and shard assignment is a pure
    /// function of the key), so a warmed-from-snapshot cache evicts in
    /// the same order a never-restarted one would.
    pub fn export(&self) -> Vec<(CacheKey, Arc<CompiledResult>)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            let mut entries: Vec<(&CacheKey, &Entry)> = shard.map.iter().collect();
            entries.sort_by_key(|(_, e)| e.stamp);
            out.extend(entries.into_iter().map(|(k, e)| (*k, Arc::clone(&e.value))));
        }
        out
    }

    /// Inserts `entries` in order (first = least recently used), as if
    /// each had just been [`ResultCache::insert`]ed. Returns how many
    /// were inserted. The counterpart of [`ResultCache::export`].
    pub fn import(
        &self,
        entries: impl IntoIterator<Item = (CacheKey, Arc<CompiledResult>)>,
    ) -> u64 {
        let mut imported = 0u64;
        for (key, value) in entries {
            self.insert(key, value);
            imported += 1;
        }
        imported
    }

    /// Flags every resident entry as *warm* (pre-loaded before the
    /// service started taking traffic); subsequent hits on them count
    /// under [`CacheStats::warm_hits`]. Returns how many were flagged.
    /// Entries inserted afterwards stay cold, and re-inserting over a
    /// warm entry (a recompute) resets it to cold.
    pub fn mark_warm(&self) -> u64 {
        let mut flagged = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            for entry in shard.map.values_mut() {
                entry.warm = true;
                flagged += 1;
            }
        }
        flagged
    }

    /// Zeroes the lookup counters (entries stay resident). Called at
    /// the end of a warmup so the serving-phase stats are not polluted
    /// by the warmup's own misses and insertions.
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.warm_hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.insertions.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Returns `true` if no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrc_predictor::RewardKind;

    fn key(h: u64) -> CacheKey {
        CacheKey {
            circuit_hash: h,
            device_pin: None,
            shard: ShardKey::wildcard(RewardKind::ExpectedFidelity),
            generation: 0,
        }
    }

    fn payload(tag: &str) -> Arc<CompiledResult> {
        Arc::new(CompiledResult {
            qasm: tag.into(),
            device: None,
            actions: vec![],
            reward: 0.5,
        })
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = ResultCache::new(8, 2);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), payload("a"));
        assert_eq!(cache.get(&key(1)).unwrap().qasm, "a");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn key_components_all_partition_the_space() {
        let base = key(7);
        let other_reward = CacheKey {
            shard: ShardKey::wildcard(RewardKind::CriticalDepth),
            ..base
        };
        let other_device = CacheKey {
            device_pin: Some(DeviceId::OqcLucy),
            ..base
        };
        let other_shard = CacheKey {
            shard: ShardKey {
                width_band: crate::shard::WidthBand::Narrow,
                ..base.shard
            },
            ..base
        };
        let other_generation = CacheKey {
            generation: 7,
            ..base
        };
        let cache = ResultCache::new(16, 4);
        cache.insert(base, payload("base"));
        assert!(cache.get(&other_reward).is_none());
        assert!(cache.get(&other_device).is_none());
        assert!(cache.get(&other_shard).is_none());
        assert!(
            cache.get(&other_generation).is_none(),
            "a reloaded policy generation never sees the old one's entries"
        );
        // …but the generation does NOT perturb the seed mix: identical
        // checkpoints must answer identically across reloads/restarts.
        assert_eq!(base.mix(), other_generation.mix());
        assert!(cache.get(&key(8)).is_none());
        assert_eq!(cache.get(&base).unwrap().qasm, "base");
        // The mixes differ too (shard + seed separation).
        assert_ne!(base.mix(), other_reward.mix());
        assert_ne!(base.mix(), other_device.mix());
        assert_ne!(base.mix(), other_shard.mix());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Single shard, capacity 2.
        let cache = ResultCache::new(2, 1);
        cache.insert(key(1), payload("1"));
        cache.insert(key(2), payload("2"));
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), payload("3"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some(), "recently used survives");
        assert!(cache.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_splits_across_shards() {
        let cache = ResultCache::new(64, 8);
        for h in 0..200 {
            cache.insert(key(h), payload("x"));
        }
        // Each shard holds at most ceil(64/8) = 8 entries.
        assert!(cache.len() <= 64, "len {} exceeds capacity", cache.len());
        assert!(!cache.is_empty());
        assert!(cache.stats().evictions >= 200 - 64);
    }

    #[test]
    fn device_seed_tags_are_total_and_collision_free() {
        // Regression for the old `position(…).unwrap_or(0)` alias: no
        // pin and every pin must map to pairwise-distinct tags, and
        // the numbering must stay the historical 1 + position-in-ALL
        // (seed compatibility with existing checkpoints).
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(device_seed_tag(None)));
        assert_eq!(device_seed_tag(None), 0);
        for (i, d) in DeviceId::ALL.into_iter().enumerate() {
            let tag = device_seed_tag(Some(d));
            assert!(seen.insert(tag), "pin {} shares a seed tag", d.name());
            assert_eq!(tag, 1 + i as u64, "tag of {} drifted", d.name());
        }
        // And the full mix never collides across pins of one circuit:
        // distinct pins must never share a rollout seed index.
        let mut mixes = std::collections::HashSet::new();
        let pins = std::iter::once(None).chain(DeviceId::ALL.into_iter().map(Some));
        for pin in pins {
            let k = CacheKey {
                device_pin: pin,
                ..key(42)
            };
            assert!(mixes.insert(k.mix()), "pin {pin:?} shares a seed mix");
        }
    }

    #[test]
    fn warm_hits_are_counted_apart_from_cold_hits() {
        let cache = ResultCache::new(8, 2);
        cache.insert(key(1), payload("pre"));
        assert_eq!(cache.mark_warm(), 1);
        cache.insert(key(2), payload("post"));
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.warm_hits, stats.cold_hits()), (2, 1, 1));
        // A recompute over a warm entry resets it to cold.
        cache.insert(key(1), payload("recomputed"));
        assert!(cache.get(&key(1)).is_some());
        assert_eq!(cache.stats().warm_hits, 1, "recomputed entry hits cold");
        // Counter reset keeps entries resident but zeroes the ledger.
        cache.reset_counters();
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn export_import_round_trips_entries_and_eviction_order() {
        let cache = ResultCache::new(4, 1);
        cache.insert(key(1), payload("1"));
        cache.insert(key(2), payload("2"));
        cache.insert(key(3), payload("3"));
        // Touch 1 so the LRU order becomes 2, 3, 1.
        assert!(cache.get(&key(1)).is_some());
        let exported = cache.export();
        assert_eq!(
            exported
                .iter()
                .map(|(k, _)| k.circuit_hash)
                .collect::<Vec<_>>(),
            vec![2, 3, 1],
            "export is least-recently-used first"
        );

        let restored = ResultCache::new(4, 1);
        assert_eq!(restored.import(exported.clone()), 3);
        assert_eq!(restored.export().len(), exported.len());
        for ((ka, va), (kb, vb)) in exported.iter().zip(restored.export()) {
            assert_eq!(*ka, kb);
            assert_eq!(va.qasm, vb.qasm);
        }
        // The restored cache evicts in the same order the original
        // would: one over-capacity insert displaces key 2 first.
        restored.insert(key(4), payload("4"));
        restored.insert(key(5), payload("5"));
        assert!(restored.get(&key(2)).is_none(), "LRU entry evicted first");
        assert!(restored.get(&key(1)).is_some(), "most recent survives");
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = Arc::new(ResultCache::new(128, 8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..64u64 {
                        let k = key(t * 1000 + i);
                        cache.insert(k, payload("t"));
                        assert!(cache.get(&k).is_some() || cache.stats().evictions > 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().insertions, 256);
    }
}
