//! A bounded MPMC request queue: the hand-off point between I/O reader
//! threads and the batch scheduler.
//!
//! The queue is the double-buffer of the serving pipeline: readers fill
//! it while the scheduler drains batches from it, so network/stdin I/O
//! overlaps compute. Capacity is bounded — producers choose between
//! [`BoundedQueue::try_push`] (back-pressure: the caller rejects the
//! request with a structured error) and [`BoundedQueue::push_wait`]
//! (lossless: the producer blocks, used by the stdin front end where
//! dropping lines would corrupt the response stream).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push did not enqueue its item. The item is handed back so the
/// caller can answer the client instead of dropping the request.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity (back-pressure; retry or reject).
    Full(T),
    /// The queue was closed; no further items will ever be accepted.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO queue with blocking batch pops and close-to-drain
/// shutdown semantics.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().expect("queue lock poisoned")
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; both return the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the queue is at capacity.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] (returning the item) if the queue closed
    /// before space appeared.
    pub fn push_wait(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(PushError::Closed(item));
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: pending items remain poppable (drain), new
    /// pushes fail, and blocked consumers wake.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently enqueued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Returns `true` when no items are enqueued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pops a batch of up to `max` items.
    ///
    /// Blocks until at least one item is available, then keeps
    /// collecting until the batch is full or `collect_window` elapses —
    /// the window lets a burst coalesce into one scheduled batch
    /// without stalling a lone request for long.
    ///
    /// Returns `None` once the queue is closed *and* drained: the
    /// consumer's signal to finish.
    pub fn pop_batch(&self, max: usize, collect_window: Duration) -> Option<Vec<T>> {
        self.pop_batch_timed(max, collect_window)
            .map(|(batch, _)| batch)
    }

    /// [`BoundedQueue::pop_batch`] plus how long the consumer lingered
    /// assembling the batch after the first item became available — the
    /// batch-assembly wait, the latency the batching policy *added* on
    /// top of queueing. Phase-1 blocking (an empty queue with no
    /// traffic) is idle time, not assembly, and is excluded.
    pub fn pop_batch_timed(
        &self,
        max: usize,
        collect_window: Duration,
    ) -> Option<(Vec<T>, Duration)> {
        self.pop_batch_bounded(max, collect_window, None)
    }

    /// [`BoundedQueue::pop_batch_timed`] with the phase-1 block bounded
    /// by `idle`: if no item arrives within it, an *empty* batch is
    /// returned so the consumer can poll an out-of-band signal (e.g. a
    /// shutdown flag whose producer is parked in an uninterruptible
    /// read) between quiet stretches. `None` still means closed and
    /// drained.
    pub fn pop_batch_or_idle(
        &self,
        max: usize,
        collect_window: Duration,
        idle: Duration,
    ) -> Option<(Vec<T>, Duration)> {
        self.pop_batch_bounded(max, collect_window, Some(idle))
    }

    fn pop_batch_bounded(
        &self,
        max: usize,
        collect_window: Duration,
        idle: Option<Duration>,
    ) -> Option<(Vec<T>, Duration)> {
        let max = max.max(1);
        let mut state = self.lock();
        // Phase 1: block for the first item (or closure; or, when an
        // idle bound is given, its expiry).
        let idle_deadline = idle.map(|d| Instant::now() + d);
        while state.items.is_empty() {
            if state.closed {
                return None;
            }
            match idle_deadline {
                None => {
                    state = self.not_empty.wait(state).expect("queue lock poisoned");
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Some((Vec::new(), Duration::ZERO));
                    }
                    let (next, _) = self
                        .not_empty
                        .wait_timeout(state, deadline - now)
                        .expect("queue lock poisoned");
                    state = next;
                }
            }
        }
        let assembly_start = Instant::now();
        let mut batch = Vec::with_capacity(max.min(state.items.len()));
        let deadline = assembly_start + collect_window;
        // Phase 2: drain toward a full batch within the window.
        loop {
            while batch.len() < max {
                match state.items.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if batch.len() >= max || state.closed {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timeout) = self
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("queue lock poisoned");
            state = next;
            if timeout.timed_out() && state.items.is_empty() {
                break;
            }
        }
        drop(state);
        self.not_full.notify_all();
        Some((batch, assembly_start.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const NO_WAIT: Duration = Duration::ZERO;

    #[test]
    fn fifo_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop_batch(8, NO_WAIT), Some(vec![1, 2]));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err(PushError::Closed("b")));
        assert_eq!(q.pop_batch(4, NO_WAIT), Some(vec!["a"]));
        assert_eq!(q.pop_batch(4, NO_WAIT), None);
    }

    #[test]
    fn pop_blocks_until_producer_arrives() {
        let q = Arc::new(BoundedQueue::new(4));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                q.try_push(7u32).unwrap();
            })
        };
        // Blocks across the producer's sleep, then yields the item.
        assert_eq!(q.pop_batch(1, NO_WAIT), Some(vec![7]));
        producer.join().unwrap();
    }

    #[test]
    fn collect_window_coalesces_a_burst() {
        let q = Arc::new(BoundedQueue::new(16));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 1..4u32 {
                    std::thread::sleep(Duration::from_millis(5));
                    q.try_push(i).unwrap();
                }
            })
        };
        let batch = q.pop_batch(4, Duration::from_millis(500)).unwrap();
        producer.join().unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3]);
    }

    #[test]
    fn push_wait_unblocks_when_space_appears() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_wait(2u32))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop_batch(1, NO_WAIT), Some(vec![1]));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop_batch(1, NO_WAIT), Some(vec![2]));
    }

    #[test]
    fn pop_batch_timed_reports_assembly_linger() {
        let q = BoundedQueue::new(4);
        q.try_push(1u32).unwrap();
        q.try_push(2u32).unwrap();
        // A full batch is sitting in the queue: no linger to speak of.
        let (batch, linger) = q.pop_batch_timed(2, Duration::from_millis(500)).unwrap();
        assert_eq!(batch, vec![1, 2]);
        assert!(linger < Duration::from_millis(400), "{linger:?}");
        // A partial batch waits out the collect window, and that wait
        // is what the returned duration measures.
        q.try_push(3u32).unwrap();
        let (batch, linger) = q.pop_batch_timed(2, Duration::from_millis(30)).unwrap();
        assert_eq!(batch, vec![3]);
        assert!(linger >= Duration::from_millis(30), "{linger:?}");
    }

    #[test]
    fn pop_batch_or_idle_polls_through_quiet_stretches() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        // Quiet queue: the idle bound returns an empty batch instead of
        // blocking forever.
        let (batch, _) = q
            .pop_batch_or_idle(4, NO_WAIT, Duration::from_millis(10))
            .unwrap();
        assert!(batch.is_empty());
        q.try_push(9).unwrap();
        let (batch, _) = q
            .pop_batch_or_idle(4, NO_WAIT, Duration::from_millis(10))
            .unwrap();
        assert_eq!(batch, vec![9]);
        q.close();
        assert_eq!(
            q.pop_batch_or_idle(4, NO_WAIT, Duration::from_millis(10)),
            None
        );
    }

    #[test]
    fn push_wait_fails_on_close() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_wait(2u32))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(PushError::Closed(2)));
    }
}
