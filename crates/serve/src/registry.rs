//! The model registry: persisted [`TrainedPredictor`] checkpoints, one
//! per [`ShardKey`] (`objective × device-class × width band`), loaded
//! at service startup and hot-swappable at runtime.
//!
//! Checkpoints live as `predictor_<objective>_<class>_<band>.json`
//! files inside one models directory; legacy pre-sharding
//! `predictor_<objective>.json` files are migrated on load as
//! wildcard-device/wildcard-band shards. Requests route to the most
//! specific matching shard through the deterministic fallback chain
//! documented on [`ShardKey`].

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::UNIX_EPOCH;

use qrc_circuit::QuantumCircuit;
use qrc_predictor::{
    task_seed, train, PersistError, PredictorConfig, RewardKind, TrainedPredictor,
};
use serde_json::Value;

use crate::shard::{RouteLevel, ShardKey};

/// Full-precision provenance of one checkpoint file, captured by a
/// `stat` *before* the file is parsed. Two stamps compare equal only
/// when path, modification time (at full filesystem precision, not
/// whole seconds), and byte length all agree — the test a rescan uses
/// to decide a checkpoint is unchanged, so even two writes landing
/// within the same second are told apart.
#[derive(Clone, PartialEq, Eq)]
struct CheckpointStamp {
    path: PathBuf,
    mtime: Option<std::time::SystemTime>,
    len: u64,
}

impl CheckpointStamp {
    /// Stats `path` (best-effort mtime; a filesystem without mtimes
    /// yields `None`, which never compares equal to itself on purpose
    /// via the reuse check requiring `Some`).
    fn capture(path: &Path) -> Option<CheckpointStamp> {
        let meta = std::fs::metadata(path).ok()?;
        Some(CheckpointStamp {
            path: path.to_path_buf(),
            mtime: meta.modified().ok(),
            len: meta.len(),
        })
    }

    /// Seconds-since-epoch rendering for the stats reply.
    fn mtime_epoch_secs(&self) -> Option<u64> {
        self.mtime
            .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
            .map(|d| d.as_secs())
    }
}

/// Externally comparable identity of one shard's checkpoint file: its
/// file name, full-precision mtime (nanoseconds since the epoch), and
/// byte length. Persisted into cache snapshots so a restored snapshot
/// can prove each shard's policy is *the same file* the entries were
/// computed under — a swapped checkpoint must never serve a stale
/// persisted answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointIdentity {
    /// The checkpoint's file name (not the full path: snapshots must
    /// survive a models directory that moved).
    pub file_name: String,
    /// Modification time in nanoseconds since the Unix epoch (`None`
    /// when the filesystem reports none — which never matches, so
    /// such checkpoints are conservatively treated as changed).
    pub mtime_unix_nanos: Option<u64>,
    /// File length in bytes.
    pub len: u64,
}

impl CheckpointIdentity {
    /// Two identities prove "same checkpoint" only when file name,
    /// mtime (present on both sides), and length all agree — the same
    /// test a hot-reload rescan uses for its unchanged fast path.
    pub fn matches(&self, other: &CheckpointIdentity) -> bool {
        self.file_name == other.file_name
            && self.len == other.len
            && self.mtime_unix_nanos.is_some()
            && self.mtime_unix_nanos == other.mtime_unix_nanos
    }
}

/// One registered shard: its policy plus checkpoint provenance (absent
/// for in-memory registries built by tests and the bench harness).
#[derive(Clone)]
struct ShardEntry {
    model: Arc<TrainedPredictor>,
    stamp: Option<CheckpointStamp>,
    /// Process-unique policy generation: every distinct loaded policy
    /// gets its own stamp, and a rescan that finds a shard's
    /// checkpoint unchanged *reuses* the previous entry (same `Arc`,
    /// same generation). The cache keys results by generation, so a
    /// swapped-in policy can never hit (or be polluted by) its
    /// predecessor's cached answers — even when a batch still running
    /// on the old snapshot publishes after the swap.
    generation: u64,
}

/// Source of [`ShardEntry::generation`] stamps.
static NEXT_GENERATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn next_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// One routing resolution: the shard that will serve a request, how
/// specific the match was, its policy generation, and the policy.
pub struct RoutedShard {
    /// The matched shard key.
    pub key: ShardKey,
    /// Which fallback level matched.
    pub level: RouteLevel,
    /// The serving policy's generation (cache-partition stamp).
    pub generation: u64,
    /// The policy itself.
    pub model: Arc<TrainedPredictor>,
}

/// An in-memory registry of trained policies keyed by [`ShardKey`].
pub struct ModelRegistry {
    shards: HashMap<ShardKey, ShardEntry>,
}

/// What one [`ModelRegistry::rescan`] (hot-reload) pass did.
#[derive(Debug, Clone, Default)]
pub struct ReloadReport {
    /// Shards freshly (re)read from disk (new or changed checkpoints).
    pub loaded: Vec<ShardKey>,
    /// Shards whose checkpoint was untouched (same path, mtime, and
    /// size): the previous policy — and its warm cache — carry over
    /// without re-parsing the file, so reload cost scales with what
    /// changed, not with fleet size.
    pub unchanged: Vec<ShardKey>,
    /// Shards whose checkpoint was corrupt: the file was quarantined
    /// and the previously loaded policy kept serving.
    pub kept: Vec<ShardKey>,
    /// Quarantined checkpoint file names (moved to `<name>.corrupt`).
    pub quarantined: Vec<String>,
    /// Shards dropped because their checkpoint vanished from disk.
    pub dropped: Vec<ShardKey>,
    /// Cached results invalidated because their serving shard's policy
    /// changed (filled in by the service layer, which owns the cache).
    pub invalidated: u64,
}

impl ReloadReport {
    fn names(keys: &[ShardKey]) -> Value {
        Value::Array(keys.iter().map(|k| Value::from(k.name())).collect())
    }

    /// Renders the report for the `{"cmd":"reload"}` reply.
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("loaded", Self::names(&self.loaded)),
            ("unchanged", Self::names(&self.unchanged)),
            ("kept", Self::names(&self.kept)),
            (
                "quarantined",
                Value::Array(
                    self.quarantined
                        .iter()
                        .map(|n| Value::from(n.clone()))
                        .collect(),
                ),
            ),
            ("dropped", Self::names(&self.dropped)),
            ("invalidated_cache_entries", Value::from(self.invalidated)),
        ])
    }
}

impl ModelRegistry {
    /// The checkpoint path for one shard inside `dir`.
    pub fn model_path(dir: &Path, key: ShardKey) -> PathBuf {
        dir.join(key.file_name())
    }

    /// Builds a registry of objective-only wildcard shards from
    /// already-trained models (used by the benchmark harness and
    /// tests, which train in-process).
    pub fn from_models(models: Vec<TrainedPredictor>) -> Self {
        Self::from_shards(
            models
                .into_iter()
                .map(|m| (ShardKey::wildcard(m.reward()), m))
                .collect(),
        )
    }

    /// Builds a registry from explicitly sharded in-memory models.
    ///
    /// # Panics
    ///
    /// Panics if a model's trained objective disagrees with its shard
    /// key — a registry must never answer an objective with a policy
    /// trained for another.
    pub fn from_shards(models: Vec<(ShardKey, TrainedPredictor)>) -> Self {
        ModelRegistry {
            shards: models
                .into_iter()
                .map(|(key, model)| {
                    assert_eq!(
                        model.reward(),
                        key.objective,
                        "shard {key} holds a model trained for `{}`",
                        model.reward()
                    );
                    (
                        key,
                        ShardEntry {
                            model: Arc::new(model),
                            stamp: None,
                            generation: next_generation(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Loads every checkpoint present in `dir` (absent shards are
    /// simply absent from the registry; corrupt files are errors).
    ///
    /// File names that do not follow the checkpoint grammar (including
    /// `.corrupt` quarantines and `.json.tmp` leftovers) are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] if a present checkpoint fails to load.
    pub fn load(dir: &Path) -> Result<Self, PersistError> {
        let mut shards = HashMap::new();
        for (key, path) in discover_checkpoints(dir)? {
            let stamp = CheckpointStamp::capture(&path);
            let model = TrainedPredictor::load(&path)?;
            if model.reward() != key.objective {
                return Err(PersistError::Format(format!(
                    "{} holds a model for objective `{}`",
                    path.display(),
                    model.reward()
                )));
            }
            shards.insert(key, entry_from_disk(model, stamp));
        }
        Ok(ModelRegistry { shards })
    }

    /// Loads checkpoints from `dir`, training and persisting any
    /// missing objective-only wildcard shard on `suite` first — see
    /// [`ModelRegistry::ensure_with_shards`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on real I/O failures.
    pub fn ensure(
        dir: &Path,
        suite: &[QuantumCircuit],
        timesteps: usize,
        seed: u64,
        step_penalty: f64,
        progress: impl FnMut(&str),
    ) -> Result<Self, PersistError> {
        Self::ensure_with_shards(dir, suite, &[], timesteps, seed, step_penalty, progress)
    }

    /// Loads checkpoints from `dir`, training and persisting whatever
    /// is missing: the three objective-only wildcard shards (so a
    /// partial fleet still answers every objective) plus every
    /// explicitly requested `extra` shard, each trained on its
    /// shard-scoped benchmark slice ([`ShardKey::suite_slice`]).
    ///
    /// `ensure` is self-healing: a checkpoint that fails to parse
    /// (torn by a crash, corrupted on disk, or holding the wrong
    /// objective) is quarantined to `<name>.corrupt` and retrained
    /// instead of bricking every subsequent warm start. Stale
    /// `.json.tmp` files from an interrupted [`TrainedPredictor::save`]
    /// are swept first.
    ///
    /// Wildcard shards train with the master `seed` (bit-compatible
    /// with pre-sharding checkpoints); every other shard mixes the
    /// shard tag into its seed so sibling shards explore independently.
    ///
    /// `progress` is invoked with the shard name before each
    /// (potentially slow) training run; pass a no-op when silent.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on real I/O failures (unreadable
    /// directory, unwritable model files).
    pub fn ensure_with_shards(
        dir: &Path,
        suite: &[QuantumCircuit],
        extra: &[ShardKey],
        timesteps: usize,
        seed: u64,
        step_penalty: f64,
        mut progress: impl FnMut(&str),
    ) -> Result<Self, PersistError> {
        std::fs::create_dir_all(dir)?;
        sweep_stale_tmp_files(dir)?;
        let mut shards = HashMap::new();
        let mut quarantined_keys: Vec<ShardKey> = Vec::new();
        for (key, path) in discover_checkpoints(dir)? {
            let stamp = CheckpointStamp::capture(&path);
            match TrainedPredictor::load(&path) {
                Ok(model) if model.reward() == key.objective => {
                    shards.insert(key, entry_from_disk(model, stamp));
                }
                // Wrong objective inside the file: treat like
                // corruption — quarantine and retrain below.
                Ok(_) => {
                    quarantine(&path)?;
                    quarantined_keys.push(key);
                }
                Err(PersistError::Format(_)) => {
                    quarantine(&path)?;
                    quarantined_keys.push(key);
                }
                Err(e) => return Err(e),
            }
        }
        let mut registry = ModelRegistry { shards };
        let mut required: Vec<ShardKey> = RewardKind::ALL.map(ShardKey::wildcard).to_vec();
        // A corrupt checkpoint proves the operator wanted that shard:
        // retrain it even when it is not in today's `extra` list —
        // quarantining must heal, never silently shrink the fleet.
        for key in extra.iter().chain(quarantined_keys.iter()) {
            if !required.contains(key) {
                required.push(*key);
            }
        }
        for key in required {
            if registry.shards.contains_key(&key) {
                continue;
            }
            progress(&key.name());
            let shard_seed = if key == ShardKey::wildcard(key.objective) {
                seed
            } else {
                task_seed(seed, key.tag())
            };
            let mut config = PredictorConfig::new(key.objective, timesteps);
            config.seed = shard_seed;
            config.step_penalty = step_penalty;
            let model = train(key.suite_slice(suite), &config);
            let path = Self::model_path(dir, key);
            model.save(&path)?;
            let stamp = CheckpointStamp::capture(&path);
            registry.shards.insert(key, entry_from_disk(model, stamp));
        }
        Ok(registry)
    }

    /// Re-reads every checkpoint in `dir` for a hot-reload, building
    /// the next registry snapshot without ever leaving a shard worse
    /// than `previous` had it:
    ///
    /// * a checkpoint that parses replaces (or adds) its shard,
    /// * a torn/corrupt checkpoint is quarantined to `<name>.corrupt`
    ///   and the previously loaded policy **keeps serving** (a bad push
    ///   must not take down a healthy shard),
    /// * a shard whose checkpoint vanished is dropped (operator intent;
    ///   the fallback chain keeps answering its slice),
    /// * an untouched checkpoint (same path, full-precision mtime, and
    ///   length) is not even re-parsed: the previous entry — policy,
    ///   generation, warm cache — carries over, so a rescan costs
    ///   O(changed checkpoints),
    /// * nothing is trained — reload is load-only and fast.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on real I/O failures; the caller
    /// must then keep serving from `previous`.
    pub fn rescan(
        dir: &Path,
        previous: &ModelRegistry,
    ) -> Result<(Self, ReloadReport), PersistError> {
        let mut shards = HashMap::new();
        let mut report = ReloadReport::default();
        for (key, path) in discover_checkpoints(dir)? {
            // Stat first: an untouched checkpoint (same path, same
            // full-precision mtime, same length) keeps its previous
            // entry — same policy `Arc`, same generation, warm cache —
            // without re-parsing the file, so a rescan costs O(changed
            // checkpoints), not O(fleet).
            let stamp = CheckpointStamp::capture(&path);
            if let (Some(stamp), Some(old)) = (&stamp, previous.shards.get(&key)) {
                let unchanged = old
                    .stamp
                    .as_ref()
                    .is_some_and(|s| s == stamp && s.mtime.is_some());
                if unchanged {
                    shards.insert(key, old.clone());
                    report.unchanged.push(key);
                    continue;
                }
            }
            match TrainedPredictor::load(&path) {
                Ok(model) if model.reward() == key.objective => {
                    shards.insert(key, entry_from_disk(model, stamp));
                    report.loaded.push(key);
                }
                Ok(_) | Err(PersistError::Format(_)) => {
                    quarantine(&path)?;
                    report.quarantined.push(path.file_name().map_or_else(
                        || path.display().to_string(),
                        |n| n.to_string_lossy().into_owned(),
                    ));
                    if let Some(entry) = previous.shards.get(&key) {
                        shards.insert(key, entry.clone());
                        report.kept.push(key);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        for key in previous.keys() {
            if !shards.contains_key(&key) {
                report.dropped.push(key);
            }
        }
        report.loaded.sort();
        report.unchanged.sort();
        report.kept.sort();
        report.dropped.sort();
        report.quarantined.sort();
        Ok((ModelRegistry { shards }, report))
    }

    /// The shards whose serving policy differs between two registry
    /// snapshots — the set a hot-reload purges cached results for
    /// (purging is memory hygiene; correctness is already guaranteed
    /// by the generation stamp inside every cache key). A shard is
    /// unchanged only when both snapshots hold the same policy
    /// generation: `kept` entries and untouched-checkpoint entries
    /// carry their generation across a rescan.
    pub fn changed_shards(previous: &ModelRegistry, fresh: &ModelRegistry) -> Vec<ShardKey> {
        let mut keys: Vec<ShardKey> = previous
            .shards
            .keys()
            .chain(fresh.shards.keys())
            .copied()
            .collect();
        keys.sort();
        keys.dedup();
        keys.into_iter()
            .filter(
                |key| match (previous.shards.get(key), fresh.shards.get(key)) {
                    (Some(a), Some(b)) => a.generation != b.generation,
                    // Appeared or vanished: routing for its slice
                    // changes either way.
                    _ => true,
                },
            )
            .collect()
    }

    /// The quarantine path a corrupt checkpoint is moved to by
    /// [`ModelRegistry::ensure`] and [`ModelRegistry::rescan`] (the
    /// original bytes are preserved for post-mortems).
    pub fn quarantine_path(path: &Path) -> PathBuf {
        let mut name = path
            .file_name()
            .map_or_else(Default::default, |n| n.to_os_string());
        name.push(".corrupt");
        path.with_file_name(name)
    }

    /// Routes a requested slice to the most specific matching shard
    /// through the fallback chain (exact → band-wildcard →
    /// device-wildcard → objective-only). Deterministic: a given
    /// request against a given registry always resolves identically.
    pub fn route(&self, requested: ShardKey) -> Option<RoutedShard> {
        for key in requested.fallback_chain() {
            if let Some(entry) = self.shards.get(&key) {
                return Some(RoutedShard {
                    key,
                    level: RouteLevel::of(&requested, &key),
                    generation: entry.generation,
                    model: Arc::clone(&entry.model),
                });
            }
        }
        None
    }

    /// The serving policy generation of one shard, if registered.
    /// Snapshot import rebases persisted cache keys onto this stamp so
    /// restored entries land in the *current* policy's cache partition.
    pub fn generation_of(&self, key: ShardKey) -> Option<u64> {
        self.shards.get(&key).map(|e| e.generation)
    }

    /// The checkpoint identity of one shard, if it is disk-backed
    /// (in-memory shards built by tests and the bench harness have no
    /// checkpoint and therefore cannot be persisted or validated).
    pub fn checkpoint_identity(&self, key: ShardKey) -> Option<CheckpointIdentity> {
        let stamp = self.shards.get(&key)?.stamp.as_ref()?;
        Some(CheckpointIdentity {
            file_name: stamp
                .path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            mtime_unix_nanos: stamp
                .mtime
                .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                .and_then(|d| u64::try_from(d.as_nanos()).ok()),
            len: stamp.len,
        })
    }

    /// The objective-only wildcard policy for `kind`, if registered
    /// (what every request for `kind` falls back to last).
    pub fn get(&self, kind: RewardKind) -> Option<Arc<TrainedPredictor>> {
        self.shards
            .get(&ShardKey::wildcard(kind))
            .map(|e| Arc::clone(&e.model))
    }

    /// Number of registered shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Returns `true` if no shard is registered.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Every registered shard key, in canonical (sorted) order.
    pub fn keys(&self) -> Vec<ShardKey> {
        let mut keys: Vec<ShardKey> = self.shards.keys().copied().collect();
        keys.sort();
        keys
    }

    /// The objectives with at least one registered shard, in canonical
    /// order.
    pub fn kinds(&self) -> Vec<RewardKind> {
        RewardKind::ALL
            .into_iter()
            .filter(|&k| self.shards.keys().any(|s| s.objective == k))
            .collect()
    }

    /// The registry block of the `{"cmd":"stats"}` reply: every loaded
    /// shard with its checkpoint path and mtime, so operators can
    /// confirm a hot-reload took effect.
    pub fn to_value(&self) -> Value {
        Value::Array(
            self.keys()
                .into_iter()
                .map(|key| {
                    let entry = &self.shards[&key];
                    Value::object(vec![
                        ("shard", Value::from(key.name())),
                        (
                            "checkpoint",
                            entry
                                .stamp
                                .as_ref()
                                .map_or(Value::Null, |s| Value::from(s.path.display().to_string())),
                        ),
                        (
                            "mtime_epoch_secs",
                            entry
                                .stamp
                                .as_ref()
                                .and_then(CheckpointStamp::mtime_epoch_secs)
                                .map_or(Value::Null, Value::from),
                        ),
                    ])
                })
                .collect(),
        )
    }
}

/// Builds a disk-backed shard entry. `stamp` must have been captured
/// *before* the file was parsed, so a concurrent overwrite between
/// stat and read is detected as a change on the next rescan rather
/// than masked by a post-read stat of the new file.
fn entry_from_disk(model: TrainedPredictor, stamp: Option<CheckpointStamp>) -> ShardEntry {
    ShardEntry {
        model: Arc::new(model),
        stamp,
        generation: next_generation(),
    }
}

/// Scans `dir` for checkpoint files, resolving the naming grammar
/// (legacy names migrate to wildcard shards; when a legacy and an
/// explicit file name the same shard, the explicit one wins). Results
/// are sorted by shard key for deterministic load order.
fn discover_checkpoints(dir: &Path) -> Result<Vec<(ShardKey, PathBuf)>, PersistError> {
    let mut found: HashMap<ShardKey, (PathBuf, bool)> = HashMap::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let file_name = entry.file_name();
        let Some((key, legacy)) = ShardKey::from_file_name(&file_name.to_string_lossy()) else {
            continue;
        };
        // An explicit name always shadows the legacy spelling.
        let replace = match found.get(&key) {
            None => true,
            Some((_, existing_legacy)) => *existing_legacy && !legacy,
        };
        if replace {
            found.insert(key, (entry.path(), legacy));
        }
    }
    let mut checkpoints: Vec<(ShardKey, PathBuf)> = found
        .into_iter()
        .map(|(key, (path, _))| (key, path))
        .collect();
    checkpoints.sort_by_key(|(key, _)| *key);
    Ok(checkpoints)
}

/// Removes leftover `.json.tmp` (checkpoint save) and `.ndjson.tmp`
/// (cache snapshot) files from interrupted atomic writes — they were
/// never renamed into place, so they hold nothing durable.
fn sweep_stale_tmp_files(dir: &Path) -> Result<(), PersistError> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".json.tmp") || name.ends_with(".ndjson.tmp") {
            std::fs::remove_file(entry.path()).ok();
        }
    }
    Ok(())
}

/// Moves a checkpoint that failed to parse out of the registry's way,
/// keeping its bytes for inspection. Shared with the cache snapshot
/// loader, which quarantines torn snapshots the same way.
pub(crate) fn quarantine(path: &Path) -> Result<(), PersistError> {
    let dest = ModelRegistry::quarantine_path(path);
    // A second corruption of the same shard must still heal: clear any
    // stale quarantine first (rename-over-existing is an error on some
    // platforms).
    std::fs::remove_file(&dest).ok();
    std::fs::rename(path, dest)?;
    Ok(())
}
