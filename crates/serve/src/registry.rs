//! The model registry: persisted [`TrainedPredictor`] checkpoints, one
//! per [`RewardKind`], loaded once at service startup.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use qrc_circuit::QuantumCircuit;
use qrc_predictor::{train, PersistError, PredictorConfig, RewardKind, TrainedPredictor};

/// An in-memory registry of trained policies keyed by objective.
///
/// Checkpoints live as `predictor_<objective>.json` files inside one
/// models directory; [`ModelRegistry::ensure`] trains and persists any
/// that are missing, so a cold start is self-healing and a warm start
/// loads in milliseconds.
pub struct ModelRegistry {
    models: HashMap<RewardKind, Arc<TrainedPredictor>>,
}

impl ModelRegistry {
    /// The checkpoint path for one objective inside `dir`.
    pub fn model_path(dir: &Path, kind: RewardKind) -> PathBuf {
        dir.join(format!("predictor_{}.json", kind.name()))
    }

    /// Builds a registry from already-trained models (used by the
    /// benchmark harness, which trains in-process).
    pub fn from_models(models: Vec<TrainedPredictor>) -> Self {
        ModelRegistry {
            models: models
                .into_iter()
                .map(|m| (m.reward(), Arc::new(m)))
                .collect(),
        }
    }

    /// Loads every checkpoint present in `dir` (missing objectives are
    /// simply absent from the registry; corrupt files are errors).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] if a present checkpoint fails to load.
    pub fn load(dir: &Path) -> Result<Self, PersistError> {
        let mut models = HashMap::new();
        for kind in RewardKind::ALL {
            let path = Self::model_path(dir, kind);
            if path.exists() {
                let model = TrainedPredictor::load(&path)?;
                if model.reward() != kind {
                    return Err(PersistError::Format(format!(
                        "{} holds a model for objective `{}`",
                        path.display(),
                        model.reward()
                    )));
                }
                models.insert(kind, Arc::new(model));
            }
        }
        Ok(ModelRegistry { models })
    }

    /// Loads checkpoints from `dir`, training and persisting any
    /// missing objective on `suite` with the given budget first.
    ///
    /// Unlike [`ModelRegistry::load`], `ensure` is self-healing: a
    /// checkpoint that fails to parse (torn by a crash, corrupted on
    /// disk, or holding the wrong objective) is quarantined to
    /// `<name>.corrupt` and retrained instead of bricking every
    /// subsequent warm start. Stale `.json.tmp` files from an
    /// interrupted [`TrainedPredictor::save`] are swept first.
    ///
    /// `progress` is invoked with the objective name before each
    /// (potentially slow) training run; pass a no-op when silent.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on real I/O failures (unreadable
    /// directory, unwritable model files).
    pub fn ensure(
        dir: &Path,
        suite: &[QuantumCircuit],
        timesteps: usize,
        seed: u64,
        step_penalty: f64,
        mut progress: impl FnMut(&str),
    ) -> Result<Self, PersistError> {
        std::fs::create_dir_all(dir)?;
        let mut models = HashMap::new();
        for kind in RewardKind::ALL {
            let path = Self::model_path(dir, kind);
            // An interrupted save can leave a temp file; it was never
            // renamed into place, so it holds nothing durable.
            std::fs::remove_file(path.with_extension("json.tmp")).ok();
            if !path.exists() {
                continue;
            }
            match TrainedPredictor::load(&path) {
                Ok(model) if model.reward() == kind => {
                    models.insert(kind, Arc::new(model));
                }
                // Wrong objective inside the file: treat like
                // corruption — quarantine and retrain below.
                Ok(_) => quarantine(&path)?,
                Err(PersistError::Format(_)) => quarantine(&path)?,
                Err(e) => return Err(e),
            }
        }
        let mut registry = ModelRegistry { models };
        for kind in RewardKind::ALL {
            if registry.models.contains_key(&kind) {
                continue;
            }
            progress(kind.name());
            let mut config = PredictorConfig::new(kind, timesteps);
            config.seed = seed;
            config.step_penalty = step_penalty;
            let model = train(suite.to_vec(), &config);
            model.save(&Self::model_path(dir, kind))?;
            registry.models.insert(kind, Arc::new(model));
        }
        Ok(registry)
    }

    /// The quarantine path a corrupt checkpoint is moved to by
    /// [`ModelRegistry::ensure`] (the original bytes are preserved for
    /// post-mortems; the registry retrains a replacement).
    pub fn quarantine_path(path: &Path) -> PathBuf {
        let mut name = path
            .file_name()
            .map_or_else(Default::default, |n| n.to_os_string());
        name.push(".corrupt");
        path.with_file_name(name)
    }

    /// The policy trained for `kind`, if registered.
    pub fn get(&self, kind: RewardKind) -> Option<Arc<TrainedPredictor>> {
        self.models.get(&kind).map(Arc::clone)
    }

    /// Number of registered policies.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Returns `true` if no policy is registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The objectives with a registered policy, in canonical order.
    pub fn kinds(&self) -> Vec<RewardKind> {
        RewardKind::ALL
            .into_iter()
            .filter(|k| self.models.contains_key(k))
            .collect()
    }
}

/// Moves a checkpoint that failed to parse out of the registry's way,
/// keeping its bytes for inspection.
fn quarantine(path: &Path) -> Result<(), PersistError> {
    let dest = ModelRegistry::quarantine_path(path);
    // A second corruption of the same objective must still heal:
    // clear any stale quarantine first (rename-over-existing is an
    // error on some platforms).
    std::fs::remove_file(&dest).ok();
    std::fs::rename(path, dest)?;
    Ok(())
}
