//! Shard addressing for the model registry: policies are keyed by
//! `(objective × device-class × width band)` instead of bare objective,
//! so specialized policies answer the traffic slice they are best at.
//!
//! A [`ShardKey`] names one policy shard. Requests resolve to a shard
//! through a deterministic fallback chain (most specific first):
//!
//! 1. **exact** — `(objective, device class, width band)`,
//! 2. **band-wildcard** — `(objective, device class, any)`,
//! 3. **device-wildcard** — `(objective, any, width band)`,
//! 4. **objective-only** — `(objective, any, any)`.
//!
//! The objective-only shard is what every pre-sharding deployment
//! already has (legacy `predictor_<objective>.json` checkpoints load as
//! wildcard-device/wildcard-band shards), so a partial fleet still
//! answers everything.

use qrc_circuit::QuantumCircuit;
use qrc_device::{Device, DeviceId, DeviceRegistry, Platform};
use qrc_predictor::RewardKind;

/// The device dimension of a shard: a hardware platform family, or the
/// wildcard matching any (including unpinned requests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceClass {
    /// Matches every device and unpinned requests (the wildcard).
    Any,
    /// One hardware platform family (all of its devices).
    Class(Platform),
}

impl DeviceClass {
    /// Every concrete class plus the wildcard, wildcard first.
    pub fn all() -> Vec<DeviceClass> {
        let mut out = vec![DeviceClass::Any];
        out.extend(Platform::ALL.into_iter().map(DeviceClass::Class));
        out
    }

    /// Stable name used in shard keys and checkpoint file names.
    pub const fn name(self) -> &'static str {
        match self {
            DeviceClass::Any => "any",
            DeviceClass::Class(p) => p.name(),
        }
    }

    /// The inverse of [`DeviceClass::name`].
    pub fn from_name(name: &str) -> Option<DeviceClass> {
        if name == "any" {
            return Some(DeviceClass::Any);
        }
        Platform::ALL
            .into_iter()
            .find(|p| p.name() == name)
            .map(DeviceClass::Class)
    }

    /// The class a pinned device belongs to (`Any` for no pin). The
    /// class is derived from the device spec's *platform string*: when
    /// it names one of the four known platforms the pin routes to that
    /// class's specialists (every built-in does — their platform
    /// string is the platform name), while an unknown vendor string
    /// routes to the device-wildcard level, where the generalist
    /// shards serve it.
    pub fn of_pin(pin: Option<DeviceId>) -> DeviceClass {
        match pin.and_then(DeviceRegistry::platform_class) {
            Some(p) => DeviceClass::Class(p),
            None => DeviceClass::Any,
        }
    }

    /// Widest device of the class (`u32::MAX` for the wildcard) — used
    /// to scope training suites to circuits the class can execute.
    pub fn max_qubits(self) -> u32 {
        match self {
            DeviceClass::Any => u32::MAX,
            DeviceClass::Class(p) => DeviceId::of_platform(p)
                .into_iter()
                .map(|d| Device::get(d).num_qubits())
                .max()
                .unwrap_or(0),
        }
    }

    /// Stable small integer for seed/shard mixing (0 = wildcard).
    ///
    /// Exhaustive by construction: the previous
    /// `Platform::ALL.position(..).unwrap_or(0)` spelling silently
    /// aliased any platform missing from `ALL` onto the wildcard's
    /// tag 0 — which would merge that class's cache partition and
    /// training seed with the wildcard shard's. A match cannot drift:
    /// adding a platform without extending this table is a compile
    /// error, not a seed collision.
    const fn tag(self) -> u64 {
        match self {
            DeviceClass::Any => 0,
            DeviceClass::Class(Platform::Ibm) => 1,
            DeviceClass::Class(Platform::Rigetti) => 2,
            DeviceClass::Class(Platform::Ionq) => 3,
            DeviceClass::Class(Platform::Oqc) => 4,
        }
    }
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The width dimension of a shard: a contiguous qubit-count band, or
/// the wildcard matching any width.
///
/// Band boundaries follow the paper's device fleet: `narrow` fits every
/// target (≤ 4 qubits), `medium` fits everything but the smallest chips
/// (5–10), `wide` is 11 qubits and up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WidthBand {
    /// Matches every width (the wildcard).
    Any,
    /// 1–4 qubits.
    Narrow,
    /// 5–10 qubits.
    Medium,
    /// 11 qubits and up.
    Wide,
}

impl WidthBand {
    /// The concrete (non-wildcard) bands, narrowest first.
    pub const BANDS: [WidthBand; 3] = [WidthBand::Narrow, WidthBand::Medium, WidthBand::Wide];

    /// The band a circuit of `width` qubits falls into.
    pub const fn of_width(width: u32) -> WidthBand {
        match width {
            0..=4 => WidthBand::Narrow,
            5..=10 => WidthBand::Medium,
            _ => WidthBand::Wide,
        }
    }

    /// Stable name used in shard keys and checkpoint file names.
    pub const fn name(self) -> &'static str {
        match self {
            WidthBand::Any => "any",
            WidthBand::Narrow => "narrow",
            WidthBand::Medium => "medium",
            WidthBand::Wide => "wide",
        }
    }

    /// The inverse of [`WidthBand::name`].
    pub fn from_name(name: &str) -> Option<WidthBand> {
        match name {
            "any" => Some(WidthBand::Any),
            "narrow" => Some(WidthBand::Narrow),
            "medium" => Some(WidthBand::Medium),
            "wide" => Some(WidthBand::Wide),
            _ => None,
        }
    }

    /// Returns `true` if a circuit of `width` qubits belongs to this
    /// band (the wildcard contains every width).
    pub const fn contains(self, width: u32) -> bool {
        match self {
            WidthBand::Any => true,
            _ => matches!(
                (self, WidthBand::of_width(width)),
                (WidthBand::Narrow, WidthBand::Narrow)
                    | (WidthBand::Medium, WidthBand::Medium)
                    | (WidthBand::Wide, WidthBand::Wide)
            ),
        }
    }

    /// Stable small integer for seed/shard mixing (0 = wildcard).
    const fn tag(self) -> u64 {
        match self {
            WidthBand::Any => 0,
            WidthBand::Narrow => 1,
            WidthBand::Medium => 2,
            WidthBand::Wide => 3,
        }
    }
}

impl std::fmt::Display for WidthBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The address of one policy shard:
/// `(objective × device-class × width band)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardKey {
    /// The optimization objective the shard's policy was trained for.
    pub objective: RewardKind,
    /// The device slice it answers (`Any` = every device / unpinned).
    pub device_class: DeviceClass,
    /// The circuit-width slice it answers (`Any` = every width).
    pub width_band: WidthBand,
}

impl ShardKey {
    /// The objective-only wildcard shard — what a legacy
    /// `predictor_<objective>.json` checkpoint migrates to.
    pub const fn wildcard(objective: RewardKind) -> ShardKey {
        ShardKey {
            objective,
            device_class: DeviceClass::Any,
            width_band: WidthBand::Any,
        }
    }

    /// The most specific key describing one request: its objective, the
    /// class of its device pin (wildcard when unpinned), and the band
    /// of its circuit width.
    pub fn for_request(objective: RewardKind, pin: Option<DeviceId>, width: u32) -> ShardKey {
        ShardKey {
            objective,
            device_class: DeviceClass::of_pin(pin),
            width_band: WidthBand::of_width(width),
        }
    }

    /// The canonical `objective/device-class/width-band` spelling, used
    /// on the wire (`shard` echo field, stats) and by `--shard` flags.
    pub fn name(&self) -> String {
        format!(
            "{}/{}/{}",
            self.objective.name(),
            self.device_class.name(),
            self.width_band.name()
        )
    }

    /// Parses the [`ShardKey::name`] spelling.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message naming the malformed component.
    pub fn parse(text: &str) -> Result<ShardKey, String> {
        let parts: Vec<&str> = text.split('/').collect();
        if parts.len() != 3 {
            return Err(format!(
                "shard key `{text}` must be objective/device-class/width-band \
                 (e.g. fidelity/ibm/narrow)"
            ));
        }
        let objective = RewardKind::from_name(parts[0]).ok_or_else(|| {
            format!(
                "unknown objective `{}` (expected one of: {})",
                parts[0],
                RewardKind::ALL.map(|k| k.name()).join(", ")
            )
        })?;
        let device_class = DeviceClass::from_name(parts[1]).ok_or_else(|| {
            format!(
                "unknown device class `{}` (expected any or one of: {})",
                parts[1],
                Platform::ALL.map(|p| p.name()).join(", ")
            )
        })?;
        let width_band = WidthBand::from_name(parts[2]).ok_or_else(|| {
            format!(
                "unknown width band `{}` (expected one of: any, narrow, medium, wide)",
                parts[2]
            )
        })?;
        Ok(ShardKey {
            objective,
            device_class,
            width_band,
        })
    }

    /// The checkpoint file name this shard persists under:
    /// `predictor_<objective>_<device-class>_<width-band>.json`.
    pub fn file_name(&self) -> String {
        format!(
            "predictor_{}_{}_{}.json",
            self.objective.name(),
            self.device_class.name(),
            self.width_band.name()
        )
    }

    /// The inverse of [`ShardKey::file_name`], also accepting the
    /// legacy pre-sharding spelling `predictor_<objective>.json` (which
    /// migrates to the objective-only wildcard shard). Returns the key
    /// and whether the name was legacy-form.
    pub fn from_file_name(name: &str) -> Option<(ShardKey, bool)> {
        let stem = name.strip_prefix("predictor_")?.strip_suffix(".json")?;
        // Objective names may contain underscores (`critical_depth`),
        // so match known objectives as prefixes instead of splitting.
        for objective in RewardKind::ALL {
            if stem == objective.name() {
                return Some((ShardKey::wildcard(objective), true));
            }
            let Some(rest) = stem
                .strip_prefix(objective.name())
                .and_then(|r| r.strip_prefix('_'))
            else {
                continue;
            };
            let (class_name, band_name) = rest.rsplit_once('_')?;
            let device_class = DeviceClass::from_name(class_name)?;
            let width_band = WidthBand::from_name(band_name)?;
            return Some((
                ShardKey {
                    objective,
                    device_class,
                    width_band,
                },
                false,
            ));
        }
        None
    }

    /// Returns `true` if this shard can serve a request described by
    /// `requested` (its objective matches and every non-wildcard
    /// component agrees).
    pub fn covers(&self, requested: &ShardKey) -> bool {
        self.objective == requested.objective
            && (self.device_class == DeviceClass::Any
                || self.device_class == requested.device_class)
            && (self.width_band == WidthBand::Any || self.width_band == requested.width_band)
    }

    /// The deterministic fallback chain for a *requested* key, most
    /// specific first. Routing takes the first present shard; for an
    /// unpinned request (device class already wildcard) the chain
    /// collapses to two distinct keys. The specificity of a match is
    /// classified by [`RouteLevel::of`].
    pub fn fallback_chain(&self) -> [ShardKey; 4] {
        [
            *self,
            ShardKey {
                width_band: WidthBand::Any,
                ..*self
            },
            ShardKey {
                device_class: DeviceClass::Any,
                ..*self
            },
            ShardKey::wildcard(self.objective),
        ]
    }

    /// A stable 64-bit tag mixing all three components — folded into
    /// cache keys (so shard identity partitions the result cache) and
    /// into per-shard training seeds (so sibling shards explore
    /// independently).
    pub fn tag(&self) -> u64 {
        // Exhaustive for the same reason as [`DeviceClass::tag`]: an
        // objective absent from a scan of `RewardKind::ALL` would have
        // aliased onto fidelity's tag, merging two shards' cache
        // partitions and training seeds.
        let objective: u64 = match self.objective {
            RewardKind::ExpectedFidelity => 1,
            RewardKind::CriticalDepth => 2,
            RewardKind::Combination => 3,
        };
        // Distinct multipliers keep the packed tag collision-free over
        // the small component spaces.
        objective * 64 + self.device_class.tag() * 8 + self.width_band.tag()
    }

    /// The slice of a benchmark suite this shard should train on:
    /// circuits inside its width band that its device class can hold.
    ///
    /// Falls back to band-only filtering (and finally to the full
    /// suite) rather than returning an empty slice — training on zero
    /// circuits is never useful.
    pub fn suite_slice(&self, suite: &[QuantumCircuit]) -> Vec<QuantumCircuit> {
        let max = self.device_class.max_qubits();
        let scoped: Vec<QuantumCircuit> = suite
            .iter()
            .filter(|qc| self.width_band.contains(qc.num_qubits()) && qc.num_qubits() <= max)
            .cloned()
            .collect();
        if !scoped.is_empty() {
            return scoped;
        }
        let banded: Vec<QuantumCircuit> = suite
            .iter()
            .filter(|qc| self.width_band.contains(qc.num_qubits()))
            .cloned()
            .collect();
        if !banded.is_empty() {
            banded
        } else {
            suite.to_vec()
        }
    }
}

impl std::fmt::Display for ShardKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// How specific a routing match was — which step of the fallback chain
/// answered the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteLevel {
    /// The exact `(objective, device class, width band)` shard.
    Exact,
    /// The shard's width band is the wildcard.
    BandWildcard,
    /// The shard's device class is the wildcard.
    DeviceWildcard,
    /// The objective-only wildcard shard (both components wild).
    ObjectiveOnly,
}

impl RouteLevel {
    /// Every level, most specific first (the fallback order).
    pub const ALL: [RouteLevel; 4] = [
        RouteLevel::Exact,
        RouteLevel::BandWildcard,
        RouteLevel::DeviceWildcard,
        RouteLevel::ObjectiveOnly,
    ];

    /// Classifies how specific a routing match was, comparing the
    /// matched shard against the requested key: an identical key is
    /// `Exact`; the full wildcard shard answering a more specific
    /// request is `ObjectiveOnly`; otherwise the single wildcarded
    /// component names the level.
    pub fn of(requested: &ShardKey, matched: &ShardKey) -> RouteLevel {
        debug_assert!(
            matched.covers(requested),
            "{matched} must cover {requested}"
        );
        if matched == requested {
            RouteLevel::Exact
        } else if matched.device_class == DeviceClass::Any && matched.width_band == WidthBand::Any {
            RouteLevel::ObjectiveOnly
        } else if matched.width_band == WidthBand::Any {
            RouteLevel::BandWildcard
        } else {
            RouteLevel::DeviceWildcard
        }
    }

    /// Stable name used in metrics and bench reports.
    pub const fn name(self) -> &'static str {
        match self {
            RouteLevel::Exact => "exact",
            RouteLevel::BandWildcard => "band_wildcard",
            RouteLevel::DeviceWildcard => "device_wildcard",
            RouteLevel::ObjectiveOnly => "objective_only",
        }
    }
}

/// The route one response took: the shard that answered and how
/// specific the match was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRoute {
    /// The shard that served the request.
    pub shard: ShardKey,
    /// Which fallback step matched.
    pub level: RouteLevel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for objective in RewardKind::ALL {
            for device_class in DeviceClass::all() {
                for width_band in [
                    WidthBand::Any,
                    WidthBand::Narrow,
                    WidthBand::Medium,
                    WidthBand::Wide,
                ] {
                    let key = ShardKey {
                        objective,
                        device_class,
                        width_band,
                    };
                    assert_eq!(ShardKey::parse(&key.name()), Ok(key), "{key}");
                    let (parsed, legacy) = ShardKey::from_file_name(&key.file_name()).unwrap();
                    assert_eq!(parsed, key);
                    assert!(!legacy);
                }
            }
        }
    }

    #[test]
    fn legacy_file_names_migrate_to_wildcards() {
        let (key, legacy) = ShardKey::from_file_name("predictor_critical_depth.json").unwrap();
        assert!(legacy);
        assert_eq!(key, ShardKey::wildcard(RewardKind::CriticalDepth));
        assert_eq!(ShardKey::from_file_name("predictor_bogus.json"), None);
        assert_eq!(ShardKey::from_file_name("notes.txt"), None);
        assert_eq!(
            ShardKey::from_file_name("predictor_fidelity_ibm_narrow.json.corrupt"),
            None
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for (spec, needle) in [
            ("fidelity/ibm", "objective/device-class/width-band"),
            ("speed/ibm/narrow", "unknown objective"),
            ("fidelity/acme/narrow", "unknown device class"),
            ("fidelity/ibm/tiny", "unknown width band"),
        ] {
            let err = ShardKey::parse(spec).unwrap_err();
            assert!(err.contains(needle), "`{spec}` → {err}");
        }
    }

    #[test]
    fn width_bands_partition_widths() {
        assert_eq!(WidthBand::of_width(2), WidthBand::Narrow);
        assert_eq!(WidthBand::of_width(4), WidthBand::Narrow);
        assert_eq!(WidthBand::of_width(5), WidthBand::Medium);
        assert_eq!(WidthBand::of_width(10), WidthBand::Medium);
        assert_eq!(WidthBand::of_width(11), WidthBand::Wide);
        assert_eq!(WidthBand::of_width(127), WidthBand::Wide);
        for width in 1..=20 {
            assert_eq!(
                WidthBand::BANDS
                    .iter()
                    .filter(|b| b.contains(width))
                    .count(),
                1,
                "width {width} must fall in exactly one concrete band"
            );
            assert!(WidthBand::Any.contains(width));
        }
    }

    #[test]
    fn fallback_chain_is_most_specific_first() {
        let requested =
            ShardKey::for_request(RewardKind::ExpectedFidelity, Some(DeviceId::IonqHarmony), 3);
        let chain = requested.fallback_chain();
        assert_eq!(chain[0].name(), "fidelity/ionq/narrow");
        assert_eq!(chain[1].name(), "fidelity/ionq/any");
        assert_eq!(chain[2].name(), "fidelity/any/narrow");
        assert_eq!(chain[3].name(), "fidelity/any/any");
        assert_eq!(RouteLevel::of(&requested, &chain[0]), RouteLevel::Exact);
        assert_eq!(
            RouteLevel::of(&requested, &chain[1]),
            RouteLevel::BandWildcard
        );
        assert_eq!(
            RouteLevel::of(&requested, &chain[2]),
            RouteLevel::DeviceWildcard
        );
        assert_eq!(
            RouteLevel::of(&requested, &chain[3]),
            RouteLevel::ObjectiveOnly
        );
        // Every chain entry covers the requested slice.
        for key in &chain {
            assert!(key.covers(&requested), "{key}");
        }
        // A different objective never covers it.
        assert!(!ShardKey::wildcard(RewardKind::CriticalDepth).covers(&requested));

        // For an unpinned request the chain collapses: a full-wildcard
        // match classifies as objective-only, not band-wildcard.
        let unpinned = ShardKey::for_request(RewardKind::ExpectedFidelity, None, 6);
        assert_eq!(
            RouteLevel::of(&unpinned, &ShardKey::wildcard(RewardKind::ExpectedFidelity)),
            RouteLevel::ObjectiveOnly
        );
        assert_eq!(RouteLevel::of(&unpinned, &unpinned), RouteLevel::Exact);
    }

    #[test]
    fn tags_are_collision_free() {
        let mut seen = std::collections::HashSet::new();
        for objective in RewardKind::ALL {
            for device_class in DeviceClass::all() {
                for width_band in [
                    WidthBand::Any,
                    WidthBand::Narrow,
                    WidthBand::Medium,
                    WidthBand::Wide,
                ] {
                    let key = ShardKey {
                        objective,
                        device_class,
                        width_band,
                    };
                    assert!(seen.insert(key.tag()), "duplicate tag for {key}");
                }
            }
        }
    }

    #[test]
    fn tags_pin_the_historical_numbering() {
        // Cache partitions and per-shard training seeds are derived
        // from these integers; the exhaustive-match rewrite must keep
        // the numbering the `ALL`-scan produced, or every persisted
        // cache entry and trained shard would silently re-key.
        assert_eq!(DeviceClass::Any.tag(), 0);
        assert_eq!(DeviceClass::Class(Platform::Ibm).tag(), 1);
        assert_eq!(DeviceClass::Class(Platform::Rigetti).tag(), 2);
        assert_eq!(DeviceClass::Class(Platform::Ionq).tag(), 3);
        assert_eq!(DeviceClass::Class(Platform::Oqc).tag(), 4);
        for (objective, tag) in [
            (RewardKind::ExpectedFidelity, 1),
            (RewardKind::CriticalDepth, 2),
            (RewardKind::Combination, 3),
        ] {
            assert_eq!(
                ShardKey::wildcard(objective).tag(),
                tag * 64,
                "{objective:?}"
            );
        }
        // And no class may alias the wildcard's partition.
        for device_class in DeviceClass::all() {
            if device_class != DeviceClass::Any {
                assert_ne!(device_class.tag(), DeviceClass::Any.tag(), "{device_class}");
            }
        }
    }

    #[test]
    fn dynamic_pins_route_by_platform_string() {
        use qrc_device::{DeviceRegistry, DeviceSource, DeviceSpec, TopologySpec};
        // A spec whose platform string names a known platform routes
        // to that class's specialists…
        let known = DeviceRegistry::register(
            DeviceSpec::synthetic(
                "shard_test_ring_12",
                Platform::Ibm,
                TopologySpec::Ring { qubits: 12 },
            ),
            DeviceSource::Runtime,
        )
        .unwrap();
        assert_eq!(
            DeviceClass::of_pin(Some(known)),
            DeviceClass::Class(Platform::Ibm)
        );
        // …while an unknown vendor string routes to the wildcard level.
        let mut spec = DeviceSpec::synthetic(
            "shard_test_acme_9",
            Platform::Ibm,
            TopologySpec::Ring { qubits: 9 },
        );
        spec.platform = "acme_q".into();
        let unknown = DeviceRegistry::register(spec, DeviceSource::Runtime).unwrap();
        assert_eq!(DeviceClass::of_pin(Some(unknown)), DeviceClass::Any);
    }

    #[test]
    fn device_class_scopes_by_platform() {
        assert_eq!(DeviceClass::of_pin(None), DeviceClass::Any);
        assert_eq!(
            DeviceClass::of_pin(Some(DeviceId::IbmqMontreal)),
            DeviceClass::Class(Platform::Ibm)
        );
        assert_eq!(DeviceClass::Class(Platform::Oqc).max_qubits(), 8);
        assert_eq!(DeviceClass::Class(Platform::Ionq).max_qubits(), 11);
        assert_eq!(DeviceClass::Class(Platform::Ibm).max_qubits(), 127);
        assert_eq!(DeviceClass::Any.max_qubits(), u32::MAX);
    }

    #[test]
    fn suite_slice_scopes_and_never_returns_empty() {
        let suite: Vec<QuantumCircuit> = (2..=12)
            .map(|w| {
                let mut qc = QuantumCircuit::new(w);
                qc.h(0);
                qc
            })
            .collect();
        let narrow = ShardKey {
            objective: RewardKind::ExpectedFidelity,
            device_class: DeviceClass::Any,
            width_band: WidthBand::Narrow,
        };
        let slice = narrow.suite_slice(&suite);
        assert!(!slice.is_empty());
        assert!(slice.iter().all(|qc| qc.num_qubits() <= 4));

        // The OQC class (8 qubits) trims the medium band at 8.
        let oqc_medium = ShardKey {
            objective: RewardKind::ExpectedFidelity,
            device_class: DeviceClass::Class(Platform::Oqc),
            width_band: WidthBand::Medium,
        };
        let slice = oqc_medium.suite_slice(&suite);
        assert!(!slice.is_empty());
        assert!(slice.iter().all(|qc| (5..=8).contains(&qc.num_qubits())));

        // A slice the class cannot hold at all falls back to the band.
        let oqc_wide = ShardKey {
            objective: RewardKind::ExpectedFidelity,
            device_class: DeviceClass::Class(Platform::Oqc),
            width_band: WidthBand::Wide,
        };
        let slice = oqc_wide.suite_slice(&suite);
        assert!(!slice.is_empty());
        assert!(slice.iter().all(|qc| qc.num_qubits() >= 11));

        // A band absent from the suite falls back to the whole suite.
        let tiny_suite = vec![suite[0].clone()];
        let wide = ShardKey {
            objective: RewardKind::ExpectedFidelity,
            device_class: DeviceClass::Any,
            width_band: WidthBand::Wide,
        };
        assert_eq!(wide.suite_slice(&tiny_suite).len(), 1);
    }
}
