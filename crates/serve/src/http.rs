//! A minimal hand-rolled HTTP/1.1 responder for Prometheus scrapes
//! (`--metrics-listen`), so operators can point a stock Prometheus
//! `scrape_config` at the service without speaking the NDJSON
//! protocol.
//!
//! Deliberately tiny: `GET /metrics` (and `GET /` as an alias) answers
//! with the text exposition, anything else gets `404`/`405`. One
//! request per connection (`Connection: close`), no keep-alive, no
//! TLS, no chunking — a scrape is one short GET every few seconds, and
//! the NDJSON listener's thread model (nonblocking accept polled
//! against the shutdown flag, blocking per-connection I/O under a read
//! timeout) carries over unchanged.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::listener::ShutdownFlag;
use crate::service::CompilationService;

/// Longest request head we accept; a scrape's GET line plus headers is
/// a few hundred bytes, so anything larger is not a scraper.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Serves Prometheus text over HTTP until shutdown is requested. The
/// caller binds the listener (port 0 works for tests) and typically
/// runs this on its own thread next to the NDJSON front end.
///
/// # Errors
///
/// Returns the underlying I/O error if the listener cannot be switched
/// to nonblocking polling. Per-connection errors end that connection
/// only.
pub fn serve_metrics_http(
    service: &Arc<CompilationService>,
    listener: TcpListener,
    shutdown: &ShutdownFlag,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    while !shutdown.is_requested() {
        match listener.accept() {
            Ok((stream, _)) => {
                // Scrapes are cheap and rare; handle inline with
                // bounded timeouts rather than spawning per scrape.
                if stream.set_nonblocking(false).is_ok() {
                    handle_scrape(service, stream);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    Ok(())
}

/// Answers one scrape connection: parse the request line, render the
/// response, close. A stalled client is cut off by the socket
/// timeouts, so it cannot wedge the accept loop.
fn handle_scrape(service: &Arc<CompilationService>, stream: TcpStream) {
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(2))).ok();
    let mut stream = stream;
    let request_line = match read_head(&mut stream) {
        Some(head) => head.lines().next().unwrap_or_default().to_string(),
        None => return,
    };
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = match (method, path) {
        ("GET", "/metrics") | ("GET", "/") => http_response(
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &service.metrics_text(),
        ),
        ("GET", _) => http_response("404 Not Found", "text/plain; charset=utf-8", "not found\n"),
        _ => http_response(
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        ),
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Reads until the end of the request head (blank line) or the size
/// cap. Returns `None` on I/O errors, timeouts, or oversized heads —
/// all treated as "not a well-behaved scraper, drop it".
fn read_head(stream: &mut TcpStream) -> Option<String> {
    let mut head: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            return Some(String::from_utf8_lossy(&head).into_owned());
        }
        if head.len() > MAX_HEAD_BYTES {
            return None;
        }
    }
}

/// Renders one full HTTP/1.1 response with the headers every scraper
/// needs: an exact `Content-Length` and `Connection: close`.
fn http_response(status: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_carry_exact_length_and_close() {
        let response = http_response("200 OK", "text/plain", "abc");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(response.contains("Content-Length: 3\r\n"));
        assert!(response.contains("Connection: close\r\n"));
        assert!(response.ends_with("\r\n\r\nabc"));
    }

    #[test]
    fn head_reader_stops_at_blank_line() {
        use std::io::Write;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            stream
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let head = read_head(&mut server_side).unwrap();
        assert!(head.starts_with("GET /metrics HTTP/1.1"));
        drop(client.join().unwrap());
    }
}
