//! The newline-delimited JSON wire protocol: request parsing and
//! response rendering.
//!
//! Every request and response is one JSON object on one line. The
//! protocol is deliberately explicit-value based (no serde data model)
//! so it works against the offline vendored `serde_json`.

use std::sync::Arc;

use qrc_device::{DeviceId, DeviceRegistry};
use qrc_predictor::RewardKind;
use serde_json::Value;

use crate::shard::ShardRoute;

/// One compilation request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Caller-chosen correlation id, echoed back verbatim.
    pub id: Option<String>,
    /// The circuit, as an OpenQASM 2 program.
    pub qasm: String,
    /// The optimization objective (default: expected fidelity).
    pub objective: RewardKind,
    /// Optional hardware pin: force this target device and let the
    /// policy handle the rest of the flow.
    pub device_pin: Option<DeviceId>,
}

impl ServeRequest {
    /// A request with defaults (fidelity objective, no pin, no id).
    pub fn new(qasm: impl Into<String>) -> Self {
        ServeRequest {
            id: None,
            qasm: qasm.into(),
            objective: RewardKind::ExpectedFidelity,
            device_pin: None,
        }
    }

    /// Parses one NDJSON request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, a missing
    /// `qasm` field, or unknown `objective`/`device` names.
    pub fn parse(line: &str) -> Result<ServeRequest, String> {
        let value = serde_json::from_str(line).map_err(|e| e.to_string())?;
        Self::from_value(&value)
    }

    /// Parses an already-decoded JSON value as a request (shared by
    /// [`ServeRequest::parse`] and [`InboundLine::parse`], which must
    /// not decode the line twice).
    ///
    /// # Errors
    ///
    /// Same as [`ServeRequest::parse`], minus JSON syntax errors.
    pub fn from_value(value: &Value) -> Result<ServeRequest, String> {
        if value.as_object().is_none() {
            return Err("request must be a JSON object".into());
        }
        let qasm = value
            .get("qasm")
            .and_then(|v| v.as_str())
            .ok_or("missing required string field `qasm`")?
            .to_string();
        let id = match value.get("id") {
            None => None,
            Some(v) => Some(v.as_str().ok_or("field `id` must be a string")?.to_string()),
        };
        let objective = match value.get("objective") {
            None => RewardKind::ExpectedFidelity,
            Some(v) => {
                let name = v.as_str().ok_or("field `objective` must be a string")?;
                RewardKind::from_name(name).ok_or_else(|| {
                    format!(
                        "unknown objective `{name}` (expected one of: {})",
                        RewardKind::ALL.map(|k| k.name()).join(", ")
                    )
                })?
            }
        };
        let device_pin = match value.get("device") {
            None => None,
            Some(v) => {
                let name = v.as_str().ok_or("field `device` must be a string")?;
                Some(DeviceId::from_name(name).ok_or_else(|| {
                    // Lists every *registered* device — built-ins plus
                    // whatever `--device-dir` / runtime registration
                    // added — so the message reflects what this
                    // replica can actually serve.
                    format!(
                        "unknown device `{name}` (expected one of: {})",
                        DeviceRegistry::all()
                            .iter()
                            .map(|d| d.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?)
            }
        };
        Ok(ServeRequest {
            id,
            qasm,
            objective,
            device_pin,
        })
    }

    /// Best-effort `id` recovery from a request line that will not be
    /// (or could not be) scheduled — overload rejections, parse
    /// errors, malformed control commands. Front-end replies can
    /// overtake scheduled responses, so echoing the id whenever the
    /// JSON yields one is what lets clients correlate.
    pub fn recover_id(line: &str) -> Option<String> {
        serde_json::from_str(line)
            .ok()
            .and_then(|v| v.get("id").and_then(Value::as_str).map(str::to_string))
    }

    /// Renders this request as one NDJSON line — the inverse of
    /// [`ServeRequest::parse`], used by clients (and the socket replay
    /// benchmark) to put already-built requests on the wire.
    pub fn to_line(&self) -> String {
        let mut pairs: Vec<(&str, Value)> = Vec::new();
        if let Some(id) = &self.id {
            pairs.push(("id", Value::from(id.clone())));
        }
        pairs.push(("qasm", Value::from(self.qasm.clone())));
        pairs.push(("objective", Value::from(self.objective.name())));
        if let Some(pin) = self.device_pin {
            pairs.push(("device", Value::from(pin.name())));
        }
        serde_json::to_string(&Value::object(pairs))
    }
}

/// An in-band control request: a line carrying `cmd` instead of `qasm`.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlRequest {
    /// `{"cmd":"stats"}` — answer with a live metrics snapshot.
    Stats,
    /// `{"cmd":"reload"}` — rescan the models directory and atomically
    /// swap the shard map (in-flight batches finish on the old one).
    Reload,
    /// `{"cmd":"snapshot"}` — persist the result cache to
    /// `cache_snapshot.ndjson` next to the checkpoints (serving is
    /// unaffected; a restarted server warms from it).
    Snapshot,
    /// `{"cmd":"shutdown"}` — acknowledge, stop admitting requests,
    /// drain in-flight batches, and exit.
    Shutdown,
    /// `{"cmd":"metrics"}` — answer with the Prometheus text-format
    /// rendering of every counter and histogram (as a JSON string
    /// field, since replies are NDJSON).
    Metrics,
    /// `{"cmd":"calibrate","device":...,"calibration":...}` — hot-swap
    /// the named device's calibration data (zero downtime, like
    /// `reload`), bump its calibration generation, and selectively
    /// invalidate the cache entries whose answers read the old
    /// calibration.
    Calibrate {
        /// The registered device name to recalibrate.
        device: String,
        /// The calibration spec (same schema as the `calibration`
        /// field of a device spec file), decoded by the service.
        calibration: Value,
    },
}

/// One decoded inbound NDJSON line: a compilation request or a control
/// command.
#[derive(Debug, Clone, PartialEq)]
pub enum InboundLine {
    /// A compilation request to schedule.
    Request(ServeRequest),
    /// A control command answered by the front end directly.
    Control(ControlRequest),
}

impl InboundLine {
    /// Parses one NDJSON line, routing on the presence of a `cmd`
    /// field.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, an unknown
    /// `cmd`, or an invalid compilation request.
    pub fn parse(line: &str) -> Result<InboundLine, String> {
        let value = serde_json::from_str(line).map_err(|e| e.to_string())?;
        match value.get("cmd") {
            Some(cmd) => {
                let name = cmd.as_str().ok_or("field `cmd` must be a string")?;
                match name {
                    "stats" => Ok(InboundLine::Control(ControlRequest::Stats)),
                    "reload" => Ok(InboundLine::Control(ControlRequest::Reload)),
                    "snapshot" => Ok(InboundLine::Control(ControlRequest::Snapshot)),
                    "shutdown" => Ok(InboundLine::Control(ControlRequest::Shutdown)),
                    "metrics" => Ok(InboundLine::Control(ControlRequest::Metrics)),
                    "calibrate" => {
                        let device = value
                            .get("device")
                            .and_then(Value::as_str)
                            .ok_or("calibrate needs a string `device` field")?
                            .to_string();
                        let calibration = value
                            .get("calibration")
                            .ok_or("calibrate needs a `calibration` field")?
                            .clone();
                        Ok(InboundLine::Control(ControlRequest::Calibrate {
                            device,
                            calibration,
                        }))
                    }
                    other => Err(format!(
                        "unknown cmd `{other}` (expected one of: stats, reload, snapshot, \
                         shutdown, metrics, calibrate)"
                    )),
                }
            }
            None => ServeRequest::from_value(&value).map(InboundLine::Request),
        }
    }
}

/// The cacheable payload of one successful compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledResult {
    /// The compiled circuit as OpenQASM 2.
    pub qasm: String,
    /// The target device the flow ended on (None if never selected).
    pub device: Option<DeviceId>,
    /// The action trace the policy took, as stable action names.
    pub actions: Vec<String>,
    /// The achieved reward under the requested objective.
    pub reward: f64,
}

/// How a response was produced relative to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the result cache.
    Hit,
    /// Computed fresh by a policy rollout.
    Miss,
    /// Deduplicated against an identical job in the same batch.
    Coalesced,
}

impl CacheStatus {
    /// Stable wire name.
    pub const fn name(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Coalesced => "coalesced",
        }
    }
}

/// The error message of a back-pressure rejection (stable: clients and
/// tests match on it).
pub const OVERLOADED_ERROR: &str = "overloaded: request queue is full, retry later";

/// One response, pairing the request id with either a result or an
/// error message, plus cache/latency metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// Echo of the request id.
    pub id: Option<String>,
    /// The compilation result, or a request-level error.
    pub result: Result<(Arc<CompiledResult>, CacheStatus), String>,
    /// Wall-clock the service spent on this request, in microseconds.
    /// Excluded from [`ServeResponse::body_value`] so deterministic
    /// comparisons ignore timing.
    pub micros: u64,
    /// The shard the request routed to (absent for requests rejected
    /// before routing: parse errors, oversized lines, overload).
    /// Rendered as the `shard` echo field; routing is deterministic
    /// per registry snapshot, so it is part of the comparable body.
    pub route: Option<ShardRoute>,
    /// Service-assigned request ID, echoed as the `rid` wire field and
    /// stamped on `--log-requests` lines and trace spans so all three
    /// can be joined. Assigned in admission order by the service;
    /// excluded from [`ServeResponse::body_value`] (like `micros`)
    /// because it depends on arrival order, not content.
    pub rid: Option<u64>,
}

impl ServeResponse {
    /// The deterministic part of the response (everything except
    /// latency). Byte-identical between serial and batched execution.
    pub fn body_value(&self) -> Value {
        let mut pairs: Vec<(&str, Value)> = Vec::new();
        match &self.id {
            Some(id) => pairs.push(("id", Value::from(id.clone()))),
            None => pairs.push(("id", Value::Null)),
        }
        if let Some(route) = &self.route {
            pairs.push(("shard", Value::from(route.shard.name())));
        }
        match &self.result {
            Ok((result, status)) => {
                pairs.push(("ok", Value::from(true)));
                pairs.push(("qasm", Value::from(result.qasm.clone())));
                pairs.push((
                    "device",
                    match result.device {
                        Some(d) => Value::from(d.name()),
                        None => Value::Null,
                    },
                ));
                pairs.push((
                    "actions",
                    Value::Array(
                        result
                            .actions
                            .iter()
                            .map(|a| Value::from(a.clone()))
                            .collect(),
                    ),
                ));
                pairs.push(("reward", Value::from(result.reward)));
                pairs.push(("cache", Value::from(status.name())));
            }
            Err(message) => {
                pairs.push(("ok", Value::from(false)));
                pairs.push(("error", Value::from(message.clone())));
            }
        }
        Value::object(pairs)
    }

    /// The batching-independent part of the response: everything
    /// except latency *and* the `cache` status. Cache statuses depend
    /// on how the stream was cut into batches (a duplicate is `miss`,
    /// `coalesced`, or `hit` depending on what shared its batch), so
    /// replays through differently-batched front ends are compared on
    /// this value.
    pub fn payload_value(&self) -> Value {
        let mut value = self.body_value();
        if let Value::Object(pairs) = &mut value {
            pairs.retain(|(key, _)| key != "cache");
        }
        value
    }

    /// The back-pressure rejection response: sent without scheduling
    /// when the request queue is full, so overload degrades into fast
    /// structured errors instead of unbounded memory growth.
    pub fn overloaded(id: Option<String>) -> ServeResponse {
        ServeResponse {
            id,
            result: Err(OVERLOADED_ERROR.into()),
            // The same ≥1µs clock-resolution floor every other path
            // reports: a rejection is fast, not free.
            micros: 1,
            route: None,
            rid: None,
        }
    }

    /// Renders the full NDJSON response line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut value = self.body_value();
        if let Value::Object(pairs) = &mut value {
            pairs.push(("micros".into(), Value::from(self.micros)));
            if let Some(rid) = self.rid {
                pairs.push(("rid".into(), Value::from(rid)));
            }
        }
        serde_json::to_string(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_and_full_requests() {
        let r = ServeRequest::parse(r#"{"qasm":"OPENQASM 2.0;"}"#).unwrap();
        assert_eq!(r.id, None);
        assert_eq!(r.objective, RewardKind::ExpectedFidelity);
        assert_eq!(r.device_pin, None);

        let r = ServeRequest::parse(
            r#"{"id":"a1","qasm":"qreg q[1];","objective":"critical_depth","device":"oqc_lucy"}"#,
        )
        .unwrap();
        assert_eq!(r.id.as_deref(), Some("a1"));
        assert_eq!(r.objective, RewardKind::CriticalDepth);
        assert_eq!(r.device_pin, Some(DeviceId::OqcLucy));
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            ("not json", "parse error"),
            ("[1,2]", "JSON object"),
            ("{}", "qasm"),
            (r#"{"qasm": 7}"#, "qasm"),
            (r#"{"qasm":"x","objective":"speed"}"#, "unknown objective"),
            (r#"{"qasm":"x","device":"ibm_q_unknown"}"#, "unknown device"),
            (r#"{"qasm":"x","id":5}"#, "`id`"),
        ] {
            let err = ServeRequest::parse(line).unwrap_err();
            assert!(err.contains(needle), "`{line}` → {err}");
        }
    }

    #[test]
    fn response_lines_round_trip_as_json() {
        let ok = ServeResponse {
            id: Some("r9".into()),
            result: Ok((
                Arc::new(CompiledResult {
                    qasm: "OPENQASM 2.0;\n".into(),
                    device: Some(DeviceId::IonqHarmony),
                    actions: vec!["platform:ionq".into(), "synthesize".into()],
                    reward: 0.875,
                }),
                CacheStatus::Miss,
            )),
            micros: 1500,
            route: None,
            rid: Some(42),
        };
        let parsed = serde_json::from_str(&ok.to_line()).unwrap();
        assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(parsed.get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(parsed.get("micros").unwrap().as_u64(), Some(1500));
        assert_eq!(parsed.get("rid").unwrap().as_u64(), Some(42));
        assert_eq!(parsed.get("reward").unwrap().as_f64(), Some(0.875));

        let err = ServeResponse {
            id: None,
            result: Err("missing required string field `qasm`".into()),
            micros: 3,
            route: None,
            rid: None,
        };
        let parsed = serde_json::from_str(&err.to_line()).unwrap();
        assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(false));
        assert!(parsed
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("qasm"));
    }

    #[test]
    fn request_lines_round_trip() {
        for line in [
            r#"{"qasm":"OPENQASM 2.0;"}"#,
            r#"{"id":"a1","qasm":"qreg q[1];","objective":"critical_depth","device":"oqc_lucy"}"#,
        ] {
            let request = ServeRequest::parse(line).unwrap();
            let rendered = request.to_line();
            assert_eq!(ServeRequest::parse(&rendered).unwrap(), request);
        }
    }

    #[test]
    fn inbound_lines_route_on_cmd() {
        assert_eq!(
            InboundLine::parse(r#"{"cmd":"stats"}"#).unwrap(),
            InboundLine::Control(ControlRequest::Stats)
        );
        assert_eq!(
            InboundLine::parse(r#"{"cmd":"snapshot"}"#).unwrap(),
            InboundLine::Control(ControlRequest::Snapshot)
        );
        assert_eq!(
            InboundLine::parse(r#"{"cmd":"shutdown"}"#).unwrap(),
            InboundLine::Control(ControlRequest::Shutdown)
        );
        let err = InboundLine::parse(r#"{"cmd":"reboot"}"#).unwrap_err();
        assert!(err.contains("unknown cmd"), "{err}");
        match InboundLine::parse(
            r#"{"cmd":"calibrate","device":"oqc_lucy",
                "calibration":{"synthetic":{"profile":"superconducting_oqc","seed":"v2"}}}"#,
        )
        .unwrap()
        {
            InboundLine::Control(ControlRequest::Calibrate {
                device,
                calibration,
            }) => {
                assert_eq!(device, "oqc_lucy");
                assert!(calibration.get("synthetic").is_some());
            }
            other => panic!("{other:?}"),
        }
        let err = InboundLine::parse(r#"{"cmd":"calibrate"}"#).unwrap_err();
        assert!(err.contains("device"), "{err}");
        let err = InboundLine::parse(r#"{"cmd":"calibrate","device":"oqc_lucy"}"#).unwrap_err();
        assert!(err.contains("calibration"), "{err}");
        assert!(matches!(
            InboundLine::parse(r#"{"qasm":"OPENQASM 2.0;"}"#).unwrap(),
            InboundLine::Request(_)
        ));
    }

    #[test]
    fn payload_value_excludes_cache_status() {
        let resp = ServeResponse {
            id: Some("p".into()),
            result: Ok((
                Arc::new(CompiledResult {
                    qasm: "OPENQASM 2.0;\n".into(),
                    device: None,
                    actions: vec![],
                    reward: 0.5,
                }),
                CacheStatus::Coalesced,
            )),
            micros: 10,
            route: None,
            rid: None,
        };
        let payload = resp.payload_value();
        assert!(payload.get("cache").is_none());
        assert!(payload.get("qasm").is_some());
        assert!(resp.body_value().get("cache").is_some());
    }

    #[test]
    fn overloaded_response_is_a_structured_error() {
        let resp = ServeResponse::overloaded(Some("r1".into()));
        let parsed = serde_json::from_str(&resp.to_line()).unwrap();
        assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(parsed.get("id").unwrap().as_str(), Some("r1"));
        assert_eq!(
            parsed.get("error").unwrap().as_str(),
            Some(OVERLOADED_ERROR)
        );
    }

    #[test]
    fn body_value_excludes_latency() {
        let resp = ServeResponse {
            id: None,
            result: Err("x".into()),
            micros: 999,
            route: None,
            rid: Some(7),
        };
        // `micros` and `rid` are per-run artifacts (timing, arrival
        // order): present on the wire, absent from the comparable body.
        assert!(resp.body_value().get("micros").is_none());
        assert!(resp.body_value().get("rid").is_none());
        let parsed = serde_json::from_str(&resp.to_line()).unwrap();
        assert_eq!(parsed.get("rid").unwrap().as_u64(), Some(7));
    }
}
