//! End-to-end socket front-end tests: an in-process TCP listener on an
//! ephemeral port, a real client connection, control commands, and
//! graceful shutdown with a full drain.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use qrc_benchgen::BenchmarkFamily;
use qrc_predictor::{train, PredictorConfig, RewardKind};
use qrc_rl::PpoConfig;
use qrc_serve::{
    serve_socket, CompilationService, FrontendConfig, ModelRegistry, ServiceConfig, ShutdownFlag,
    OVERLOADED_ERROR,
};

fn tiny_service() -> Arc<CompilationService> {
    let suite = vec![
        BenchmarkFamily::Ghz.generate(3),
        BenchmarkFamily::Dj.generate(3),
    ];
    let models = RewardKind::ALL
        .into_iter()
        .map(|reward| {
            let config = PredictorConfig {
                reward,
                total_timesteps: 1200,
                ppo: PpoConfig {
                    steps_per_update: 128,
                    minibatch_size: 32,
                    epochs: 4,
                    hidden: vec![24],
                    learning_rate: 1e-3,
                    ..PpoConfig::default()
                },
                seed: 5,
                step_penalty: 0.005,
            };
            train(suite.clone(), &config)
        })
        .collect();
    Arc::new(CompilationService::with_registry(
        ModelRegistry::from_models(models),
        &ServiceConfig {
            verbose: false,
            ..ServiceConfig::default()
        },
    ))
}

/// Starts a server on an ephemeral port; returns the port and the
/// serve thread (joined to assert a clean drain).
fn start_server(
    service: &Arc<CompilationService>,
    config: FrontendConfig,
) -> (u16, std::thread::JoinHandle<std::io::Result<()>>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = listener.local_addr().unwrap().port();
    let service = Arc::clone(service);
    let shutdown = ShutdownFlag::new();
    let handle = std::thread::spawn(move || serve_socket(&service, listener, &config, &shutdown));
    (port, handle)
}

fn connect(port: u16) -> TcpStream {
    let stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
}

fn bell_line(id: &str) -> String {
    let mut qc = qrc_circuit::QuantumCircuit::new(2);
    qc.h(0).cx(0, 1).measure_all();
    format!(
        r#"{{"id":"{id}","qasm":{}}}"#,
        serde_json::to_string(&serde_json::Value::from(qrc_circuit::qasm::to_qasm(&qc)))
    )
}

#[test]
fn socket_mode_serves_stats_and_drains_on_shutdown() {
    let service = tiny_service();
    let (port, server) = start_server(&service, FrontendConfig::default());

    let mut stream = connect(port);
    let mut lines = Vec::new();
    // A small mix: two real requests (second is a duplicate), one
    // malformed line, a live stats probe, then shutdown.
    let payload = [
        bell_line("s1"),
        bell_line("s2"),
        "{broken".to_string(),
        r#"{"cmd":"stats"}"#.to_string(),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ]
    .map(|l| l + "\n")
    .concat();
    stream.write_all(payload.as_bytes()).unwrap();
    stream.flush().unwrap();

    let reader = BufReader::new(stream.try_clone().unwrap());
    for line in reader.lines() {
        match line {
            Ok(line) => lines.push(serde_json::from_str(&line).unwrap()),
            Err(_) => break,
        }
        if lines.len() == 5 {
            break;
        }
    }
    assert_eq!(lines.len(), 5, "every line is answered before the drain");

    // Control replies may overtake queued compile responses; match by
    // content, not position.
    let by_id = |id: &str| {
        lines
            .iter()
            .find(|v| v.get("id").and_then(|i| i.as_str()) == Some(id))
            .unwrap_or_else(|| panic!("no response for id `{id}`"))
    };
    let s1 = by_id("s1");
    assert_eq!(s1.get("ok").unwrap().as_bool(), Some(true));
    let s2 = by_id("s2");
    assert_eq!(s2.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(
        s1.get("qasm").unwrap().as_str(),
        s2.get("qasm").unwrap().as_str()
    );
    assert!(
        lines
            .iter()
            .any(|v| v.get("ok").and_then(|o| o.as_bool()) == Some(false)
                && v.get("error").is_some()),
        "the malformed line got a structured error"
    );
    let stats = lines
        .iter()
        .find(|v| v.get("requests").is_some())
        .expect("live stats snapshot");
    assert!(stats.get("latency_us").is_some());
    assert!(
        lines
            .iter()
            .any(|v| v.get("shutting_down").and_then(|s| s.as_bool()) == Some(true)),
        "shutdown acknowledged"
    );

    // Graceful drain: the server thread returns cleanly.
    server.join().unwrap().unwrap();
    // And the service saw exactly the three scheduled lines (stats /
    // shutdown are front-end control, not requests).
    let snap = service.metrics();
    assert_eq!(snap.requests, 3);
    assert_eq!(snap.errors, 1);
}

#[test]
fn full_queue_rejects_with_structured_overload_errors() {
    let service = tiny_service();
    // A tiny queue and single-request batches: while the first rollout
    // runs (milliseconds), the client's burst (microseconds apart)
    // overflows the queue and must be rejected, not buffered.
    let (port, server) = start_server(
        &service,
        FrontendConfig {
            batch_size: 1,
            batch_wait: Duration::ZERO,
            queue_capacity: 2,
            ..FrontendConfig::default()
        },
    );

    let mut stream = connect(port);
    let total = 50;
    let mut payload = String::new();
    for i in 0..total {
        payload.push_str(&bell_line(&format!("b{i}")));
        payload.push('\n');
    }
    stream.write_all(payload.as_bytes()).unwrap();
    stream.flush().unwrap();

    let mut answered = 0;
    let mut rejected = 0;
    let reader = BufReader::new(stream.try_clone().unwrap());
    for line in reader.lines().take(total) {
        let value = serde_json::from_str(&line.unwrap()).unwrap();
        match value.get("error").and_then(|e| e.as_str()) {
            Some(e) if e == OVERLOADED_ERROR => rejected += 1,
            Some(other) => panic!("unexpected error: {other}"),
            None => {
                assert_eq!(value.get("ok").unwrap().as_bool(), Some(true));
                answered += 1;
            }
        }
    }
    assert_eq!(answered + rejected, total, "every line is answered");
    assert!(rejected > 0, "a 50-deep burst into a 2-deep queue rejects");
    let snap = service.metrics();
    assert_eq!(snap.rejected, rejected as u64);
    assert_eq!(snap.requests, answered as u64);

    stream.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
    server.join().unwrap().unwrap();
}
