//! Closed-loop retraining tests: serve a skewed mix with traffic
//! logging, retrain offline, promote through the reload path under
//! concurrent load — zero failed requests, zero stale payloads. Plus
//! the promotion gate's rejection path (a poisoned, action-collapsed
//! candidate must quarantine, never install) and property tests for
//! curriculum construction (frequency weighting under ties, caps,
//! torn log tails, shard slicing, determinism).

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use qrc_benchgen::BenchmarkFamily;
use qrc_device::DeviceId;
use qrc_predictor::{train, PredictorConfig, RewardKind, TrainedPredictor};
use qrc_rl::PpoConfig;
use qrc_serve::{
    build_curriculum, candidate_path, gate_candidate, head_of_distribution_counts,
    install_or_quarantine, rejected_path, run_retrain, serving_shard, shard_slice, split_log,
    CompilationService, DeviceClass, ModelRegistry, RetrainConfig, ServeRequest, ServiceConfig,
    ShardKey, TrafficLog, WidthBand, RETRAIN_STATE_FILE,
};
use serde_json::Value;

/// A deliberately *weak* incumbent: far too few timesteps to learn the
/// suite, so a curriculum fine-tune has real headroom to beat it.
fn weak_model(reward: RewardKind, seed: u64) -> TrainedPredictor {
    let suite = vec![
        BenchmarkFamily::Ghz.generate(3),
        BenchmarkFamily::Dj.generate(3),
    ];
    let config = PredictorConfig {
        reward,
        total_timesteps: 300,
        ppo: PpoConfig {
            steps_per_update: 128,
            minibatch_size: 32,
            epochs: 4,
            hidden: vec![24],
            learning_rate: 1e-3,
            ..PpoConfig::default()
        },
        seed,
        step_penalty: 0.005,
    };
    train(suite, &config)
}

/// A scratch directory under the system temp dir, unique per test.
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qrc_retrain_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Starts a dir-backed service from pre-saved weak checkpoints (a warm
/// start: nothing trains).
fn weak_service(dir: &std::path::Path, parallel: bool) -> Arc<CompilationService> {
    for reward in RewardKind::ALL {
        let path = ModelRegistry::model_path(dir, ShardKey::wildcard(reward));
        if !path.exists() {
            weak_model(reward, 5).save(&path).unwrap();
        }
    }
    Arc::new(
        CompilationService::start(&ServiceConfig {
            models_dir: dir.to_path_buf(),
            parallel,
            verbose: false,
            ..ServiceConfig::default()
        })
        .unwrap(),
    )
}

fn request_for(family: BenchmarkFamily, qubits: u32, id: &str) -> ServeRequest {
    let mut request = ServeRequest::new(qrc_circuit::qasm::to_qasm(&family.generate(qubits)));
    request.id = Some(id.to_string());
    request
}

/// The skewed mix the closed loop learns from: one hot circuit
/// dominating, a warm and a cool one behind it, and a one-off tail.
/// Interleaved (not sorted) so frequency ranking is actually exercised.
fn skewed_mix() -> Vec<ServeRequest> {
    let mut requests = Vec::new();
    for i in 0..12 {
        requests.push(request_for(BenchmarkFamily::Ghz, 3, &format!("hot-{i}")));
        if i < 6 {
            requests.push(request_for(BenchmarkFamily::Dj, 3, &format!("warm-{i}")));
        }
        if i < 3 {
            requests.push(request_for(BenchmarkFamily::Ghz, 2, &format!("cool-{i}")));
        }
    }
    requests.push(request_for(BenchmarkFamily::Ghz, 4, "tail-0"));
    requests
}

/// The canonical payload string of one served request (cache status
/// and latency stripped — byte-comparable across services and time).
fn payload_of(service: &CompilationService, request: &ServeRequest) -> String {
    let responses = service.handle_batch(std::slice::from_ref(request));
    assert!(
        responses[0].result.is_ok(),
        "request must serve: {:?}",
        responses[0].result
    );
    serde_json::to_string(&responses[0].payload_value())
}

#[test]
fn closed_loop_retrain_promotes_and_swaps_with_zero_stale_answers() {
    let dir = scratch_dir("loop");
    let log_path = dir.join("traffic.ndjson");
    let service = weak_service(&dir, true);
    service.set_traffic_log(&log_path).unwrap();

    // Serve the skewed mix (logged), remembering each unique request's
    // incumbent answer.
    let mix = skewed_mix();
    for batch in mix.chunks(8) {
        for response in service.handle_batch(batch) {
            assert!(response.result.is_ok(), "{:?}", response.result);
        }
    }
    let uniques: Vec<ServeRequest> = head_of_distribution_counts(&mix, usize::MAX)
        .into_iter()
        .map(|(r, _)| r)
        .collect();
    assert_eq!(uniques.len(), 4, "four distinct circuits in the mix");
    let before: Vec<String> = uniques.iter().map(|r| payload_of(&service, r)).collect();

    // Retrain offline from the log the service just wrote.
    let config = RetrainConfig {
        models_dir: dir.clone(),
        log_path: log_path.clone(),
        timesteps: 1500,
        curriculum_cap: 8,
        max_repeats: 6,
        min_requests: 4,
        ..RetrainConfig::default()
    };
    let report = run_retrain(&config).unwrap();
    assert_eq!(report.shards_considered, 3);
    assert_eq!(
        report.skipped, 2,
        "critical-depth and combination shards saw no traffic"
    );
    assert_eq!(report.candidates, 1);
    assert_eq!(report.promoted, 1, "outcome: {:?}", report.outcomes);
    assert_eq!(report.rejected, 0);
    let outcome = &report.outcomes[0];
    assert_eq!(
        outcome.key,
        ShardKey::wildcard(RewardKind::ExpectedFidelity)
    );
    assert!(
        outcome.gate.candidate_head_reward > outcome.gate.incumbent_head_reward,
        "promotion requires a strict head improvement: {:?}",
        outcome.gate
    );
    assert!(
        outcome.gate.candidate_holdout_reward >= outcome.gate.incumbent_holdout_reward,
        "promotion requires no held-out regression: {:?}",
        outcome.gate
    );
    assert!(
        outcome.gate.candidate_entropy >= report.entropy_floor,
        "promoted candidates keep action diversity: {:?}",
        outcome.gate
    );
    assert!(dir.join(RETRAIN_STATE_FILE).exists());
    let key = outcome.key;
    assert!(
        !candidate_path(&dir, key).exists() && !rejected_path(&dir, key).exists(),
        "a promoted candidate leaves no stray files behind"
    );

    // Promote into the serving process through the reload path, under
    // 3-thread concurrent load: zero failed requests across the swap.
    // A shared served-counter brackets the reload so the swap provably
    // happens *while* traffic flows, not before or after it.
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let workers: Vec<_> = (0..3)
        .map(|w| {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            let mix = skewed_mix();
            std::thread::spawn(move || -> (u64, u64) {
                let (mut ok, mut failed, mut i) = (0u64, 0u64, 0u64);
                while !stop.load(Ordering::SeqCst) {
                    let mut request = mix[(i as usize) % mix.len()].clone();
                    request.id = Some(format!("w{w}-{i}"));
                    match service.handle_batch(std::slice::from_ref(&request))[0].result {
                        Ok(_) => ok += 1,
                        Err(_) => failed += 1,
                    }
                    served.fetch_add(1, Ordering::SeqCst);
                    i += 1;
                }
                (ok, failed)
            })
        })
        .collect();
    while served.load(Ordering::SeqCst) < 6 {
        std::thread::yield_now();
    }
    let reload = service.reload().unwrap();
    assert!(
        reload.loaded.contains(&key),
        "the promoted checkpoint is picked up: {reload:?}"
    );
    let at_swap = served.load(Ordering::SeqCst);
    while served.load(Ordering::SeqCst) < at_swap + 6 {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::SeqCst);
    let mut total_ok = 0;
    for worker in workers {
        let (ok, failed) = worker.join().unwrap();
        assert_eq!(failed, 0, "the swap must fail zero requests");
        total_ok += ok;
    }
    assert!(total_ok > 0, "the load generators actually ran");

    // Zero stale payloads: every post-swap answer is byte-identical to
    // a fresh *serial* service started from the promoted checkpoints.
    let fresh = weak_service(&dir, false);
    for (request, old) in uniques.iter().zip(&before) {
        let swapped = payload_of(&service, request);
        let recomputed = payload_of(&fresh, request);
        assert_eq!(
            swapped, recomputed,
            "post-swap answers match fresh serial compilation under the new checkpoint"
        );
        let _ = old;
    }
    // …and the hot head actually improved — the swap changed answers
    // rather than replaying the incumbent's.
    let reward_of = |payload: &str| {
        serde_json::from_str(payload)
            .ok()
            .and_then(|v: Value| v.get("reward").and_then(Value::as_f64))
            .unwrap()
    };
    let before_mean: f64 = before.iter().map(|p| reward_of(p)).sum::<f64>() / before.len() as f64;
    let after_mean: f64 = uniques
        .iter()
        .map(|r| reward_of(&payload_of(&service, r)))
        .sum::<f64>()
        / uniques.len() as f64;
    assert!(
        after_mean > before_mean,
        "promoted policy serves better answers on the logged circuits: \
         {after_mean:.4} vs {before_mean:.4}"
    );

    // The stats block surfaces the run to operators.
    let stats = serde_json::to_string(&service.stats_value());
    assert!(stats.contains("\"retrain\""), "{stats}");
    assert!(
        stats.contains("\"promoted\": 1") || stats.contains("\"promoted\":1"),
        "{stats}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Borrows the named field of a JSON object mutably.
fn field_mut<'a>(value: &'a mut Value, key: &str) -> &'a mut Value {
    match value {
        Value::Object(pairs) => pairs
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("checkpoint JSON has no `{key}` field")),
        other => panic!("expected an object around `{key}`, got {other:?}"),
    }
}

/// Poisons a checkpoint into an action-collapsed policy: the final
/// policy layer's weights are zeroed and its biases replaced with a
/// steep descending ramp, so under ANY legality mask ~all probability
/// sits on the lowest-index legal action — rollout entropy ≈ 0
/// everywhere.
fn poison_checkpoint(live: &std::path::Path, out: &std::path::Path) {
    let text = std::fs::read_to_string(live).unwrap();
    let mut doc: Value = serde_json::from_str(&text).unwrap();
    let policy = field_mut(field_mut(&mut doc, "agent"), "policy");
    let Value::Array(layers) = policy else {
        panic!("policy is a layer array");
    };
    let last = layers.last_mut().expect("policy has layers");
    let outputs = last
        .get("outputs")
        .and_then(Value::as_u64)
        .expect("outputs is numeric") as usize;
    let weights = last
        .get("w")
        .and_then(Value::as_array)
        .expect("weights are an array")
        .len();
    *field_mut(last, "w") = Value::Array(vec![Value::from(0.0); weights]);
    *field_mut(last, "b") = Value::Array(
        (0..outputs)
            .map(|k| Value::from(-10.0 * k as f64))
            .collect(),
    );
    std::fs::write(out, serde_json::to_string(&doc)).unwrap();
}

#[test]
fn gate_rejects_poisoned_candidate_and_incumbent_keeps_serving() {
    let dir = scratch_dir("gate");
    let log_path = dir.join("traffic.ndjson");
    let service = weak_service(&dir, true);
    service.set_traffic_log(&log_path).unwrap();

    let mix = skewed_mix();
    for batch in mix.chunks(8) {
        for response in service.handle_batch(batch) {
            assert!(response.result.is_ok(), "{:?}", response.result);
        }
    }
    let uniques: Vec<ServeRequest> = head_of_distribution_counts(&mix, usize::MAX)
        .into_iter()
        .map(|(r, _)| r)
        .collect();
    let before: Vec<String> = uniques.iter().map(|r| payload_of(&service, r)).collect();

    // Hand the gate a deliberately poisoned candidate: collapsed onto
    // one action, exactly what unshaped narrow-curriculum fine-tuning
    // produces at its worst.
    let key = ShardKey::wildcard(RewardKind::ExpectedFidelity);
    let live = ModelRegistry::model_path(&dir, key);
    let live_bytes = std::fs::read(&live).unwrap();
    poison_checkpoint(&live, &candidate_path(&dir, key));
    let incumbent = TrainedPredictor::load(&live).unwrap();
    let poisoned = TrainedPredictor::load(&candidate_path(&dir, key)).unwrap();

    let logged = TrafficLog::read_requests(&log_path).unwrap();
    let (curriculum_slice, holdout) = split_log(&logged, 4);
    let head = head_of_distribution_counts(&curriculum_slice, 8);
    let decision = gate_candidate(&incumbent, &poisoned, &head, &holdout, 11, 0.05);
    assert!(!decision.promoted, "a collapsed policy must never ship");
    assert!(
        decision.candidate_entropy < 0.05,
        "the poisoned policy reads as collapsed: {decision:?}"
    );
    let reason = decision.reason.as_deref().unwrap();
    assert!(
        reason.contains("entropy") && reason.contains("collapse"),
        "the rejection names the diversity floor: {reason}"
    );

    // Quarantine: the candidate lands in `.rejected.json`, the live
    // checkpoint is byte-untouched, and a rescan sees neither file.
    let landed = install_or_quarantine(decision.promoted, &dir, key).unwrap();
    assert_eq!(landed, rejected_path(&dir, key));
    assert!(!candidate_path(&dir, key).exists());
    assert_eq!(
        std::fs::read(&live).unwrap(),
        live_bytes,
        "rejection leaves the incumbent checkpoint byte-identical"
    );
    let reload = service.reload().unwrap();
    assert!(
        reload.loaded.is_empty() && reload.quarantined.is_empty(),
        "quarantined candidates are invisible to rescan: {reload:?}"
    );
    assert_eq!(
        service.registry().keys(),
        RewardKind::ALL.map(ShardKey::wildcard).to_vec()
    );
    for (request, old) in uniques.iter().zip(&before) {
        assert_eq!(
            &payload_of(&service, request),
            old,
            "the incumbent keeps serving byte-identical answers"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Properties: curriculum construction is deterministic, frequency
// weighting respects ties/caps, shard slicing never leaks, and torn
// log tails never change the head.

/// The canonical identity of a request with its id stripped — the
/// equivalence the head-of-distribution ranks by.
fn identity(request: &ServeRequest) -> String {
    let mut stripped = request.clone();
    stripped.id = None;
    stripped.to_line()
}

fn shard_key_strategy() -> impl Strategy<Value = ShardKey> {
    let bands = [
        WidthBand::Any,
        WidthBand::Narrow,
        WidthBand::Medium,
        WidthBand::Wide,
    ];
    let classes = DeviceClass::all();
    let class_count = classes.len();
    (0..RewardKind::ALL.len(), 0..class_count, 0..bands.len()).prop_map(move |(o, c, b)| ShardKey {
        objective: RewardKind::ALL[o],
        device_class: classes[c],
        width_band: bands[b],
    })
}

fn request_strategy() -> impl Strategy<Value = ServeRequest> {
    (
        qrc_circuit::strategies::circuit(1..=5u32, 8),
        0..RewardKind::ALL.len(),
        0..=DeviceId::ALL.len(),
    )
        .prop_map(|(qc, o, p)| {
            let mut request = ServeRequest::new(qrc_circuit::qasm::to_qasm(&qc));
            request.objective = RewardKind::ALL[o];
            request.device_pin = match p {
                0 => None,
                p => Some(DeviceId::ALL[p - 1]),
            };
            request
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn split_log_partitions_deterministically(
        requests in proptest::collection::vec(request_strategy(), 0..24),
        holdout_every in 0..8usize,
    ) {
        let (curriculum, holdout) = split_log(&requests, holdout_every);
        let again = split_log(&requests, holdout_every);
        prop_assert_eq!(&again.0, &curriculum, "deterministic for a fixed log");
        prop_assert_eq!(&again.1, &holdout);
        // A partition: merging the slices back by position recovers the
        // log exactly (order preserved within each slice).
        let every = holdout_every.max(2);
        prop_assert_eq!(holdout.len(), requests.len() / every);
        prop_assert_eq!(curriculum.len() + holdout.len(), requests.len());
        let (mut c, mut h) = (curriculum.iter(), holdout.iter());
        for (i, request) in requests.iter().enumerate() {
            let side = if (i + 1) % every == 0 { h.next() } else { c.next() };
            prop_assert_eq!(side.unwrap(), request);
        }
    }

    #[test]
    fn curriculum_head_respects_frequency_ties_and_caps(
        requests in proptest::collection::vec(request_strategy(), 0..32),
        cap in 1..8usize,
        max_repeats in 0..6usize,
    ) {
        let head = head_of_distribution_counts(&requests, cap);
        prop_assert!(head.len() <= cap, "the cap bounds the head");

        // Counts are the true id-stripped frequencies.
        let mut expected: HashMap<String, usize> = HashMap::new();
        for request in &requests {
            *expected.entry(identity(request)).or_default() += 1;
        }
        for (request, count) in &head {
            prop_assert_eq!(expected.get(&identity(request)), Some(count));
        }

        // Ranked by count descending; ties broken by first appearance
        // in the log (stable under re-serving the same traffic).
        let first_at = |r: &ServeRequest| {
            requests.iter().position(|x| identity(x) == identity(r)).unwrap()
        };
        for pair in head.windows(2) {
            let (a, ca) = (&pair[0].0, pair[0].1);
            let (b, cb) = (&pair[1].0, pair[1].1);
            prop_assert!(
                ca > cb || (ca == cb && first_at(a) < first_at(b)),
                "head is count-desc, first-appearance-asc: {ca} vs {cb}"
            );
        }

        // The curriculum repeats each head circuit min(count, repeats)
        // times — and twice in a row is byte-stable.
        let curriculum = build_curriculum(&requests, cap, max_repeats);
        let expected_len: usize = head
            .iter()
            .map(|(_, count)| (*count).min(max_repeats.max(1)))
            .sum();
        prop_assert_eq!(curriculum.circuits.len(), expected_len);
        let again = build_curriculum(&requests, cap, max_repeats);
        prop_assert_eq!(again.circuits.len(), curriculum.circuits.len());
        for (a, b) in curriculum.circuits.iter().zip(again.circuits.iter()) {
            prop_assert_eq!(a.structural_hash(), b.structural_hash());
        }
    }

    #[test]
    fn shard_slices_never_leak_across_shards(
        requests in proptest::collection::vec(request_strategy(), 0..24),
        available in proptest::collection::vec(shard_key_strategy(), 1..6),
    ) {
        let mut sliced_total = 0;
        for &key in &available {
            let slice = shard_slice(&requests, key, &available);
            for request in &slice {
                prop_assert_eq!(
                    serving_shard(request, &available),
                    Some(key),
                    "a slice only holds requests its shard would serve"
                );
            }
            sliced_total += slice.len();
        }
        // Every request routes to at most one serving shard, so the
        // per-shard slices partition the routable subset.
        let routable = requests
            .iter()
            .filter(|r| {
                serving_shard(r, &available).is_some_and(|k| available.contains(&k))
            })
            .count();
        let unique: std::collections::HashSet<_> =
            available.iter().copied().collect();
        if unique.len() == available.len() {
            prop_assert_eq!(sliced_total, routable);
        }
    }

    #[test]
    fn torn_log_tails_never_change_the_curriculum(
        requests in proptest::collection::vec(request_strategy(), 1..16),
        // The vendored proptest has no regex strategies: indices into a
        // fixed alphabet give the torn-tail bytes (no quotes, so the
        // garbage can never form a parseable request line).
        garbage_indices in proptest::collection::vec(0..29usize, 0..40),
        cap in 1..8usize,
    ) {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz {}";
        let garbage: String = garbage_indices
            .iter()
            .map(|&i| ALPHABET[i] as char)
            .collect();
        let dir = scratch_dir("torn");
        let path = dir.join("traffic.ndjson");
        {
            let log = TrafficLog::append(&path).unwrap();
            log.log_batch(&requests);
        }
        // A crash mid-append leaves a torn, newline-less tail.
        let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(garbage.as_bytes()).unwrap();
        drop(file);

        let read = TrafficLog::read_requests(&path).unwrap();
        // The torn tail is dropped; every complete line survives. (The
        // garbage itself never parses: it has no `qasm` field.)
        prop_assert_eq!(read.len(), requests.len());
        for (a, b) in read.iter().zip(requests.iter()) {
            prop_assert_eq!(a.to_line(), b.to_line());
        }
        let from_disk = head_of_distribution_counts(&read, cap);
        let from_memory = head_of_distribution_counts(&requests, cap);
        prop_assert_eq!(from_disk.len(), from_memory.len());
        for ((a, ca), (b, cb)) in from_disk.iter().zip(from_memory.iter()) {
            prop_assert_eq!(identity(a), identity(b));
            prop_assert_eq!(ca, cb);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
