//! End-to-end fleet tests: a real `FleetRouter` fronting in-process
//! socket replicas. Exercises consistent routing, merged control
//! fan-out, mid-stream replica loss with zero lost requests, and a
//! clean drain.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use qrc_benchgen::BenchmarkFamily;
use qrc_predictor::{train, PredictorConfig, RewardKind};
use qrc_rl::PpoConfig;
use qrc_serve::{
    serve_socket, CompilationService, FleetRouter, FrontendConfig, ModelRegistry, RouterConfig,
    ServiceConfig, ShutdownFlag,
};

fn tiny_service() -> Arc<CompilationService> {
    let suite = vec![
        BenchmarkFamily::Ghz.generate(3),
        BenchmarkFamily::Dj.generate(3),
    ];
    let models = RewardKind::ALL
        .into_iter()
        .map(|reward| {
            let config = PredictorConfig {
                reward,
                total_timesteps: 1200,
                ppo: PpoConfig {
                    steps_per_update: 128,
                    minibatch_size: 32,
                    epochs: 4,
                    hidden: vec![24],
                    learning_rate: 1e-3,
                    ..PpoConfig::default()
                },
                seed: 5,
                step_penalty: 0.005,
            };
            train(suite.clone(), &config)
        })
        .collect();
    Arc::new(CompilationService::with_registry(
        ModelRegistry::from_models(models),
        &ServiceConfig {
            verbose: false,
            ..ServiceConfig::default()
        },
    ))
}

struct Replica {
    addr: String,
    shutdown: ShutdownFlag,
    server: std::thread::JoinHandle<std::io::Result<()>>,
}

/// Starts one socket replica of the shared service on an ephemeral
/// port, returning its address, its shutdown flag (to simulate a
/// crash mid-test), and its serve thread.
fn start_replica(service: &Arc<CompilationService>) -> Replica {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let service = Arc::clone(service);
    let shutdown = ShutdownFlag::new();
    let flag = shutdown.clone();
    let config = FrontendConfig::default();
    let server = std::thread::spawn(move || serve_socket(&service, listener, &config, &flag));
    Replica {
        addr,
        shutdown,
        server,
    }
}

/// Starts the router over `replicas`, returning the client-facing
/// address, the router handle (for counters), and its run thread.
fn start_router(
    replicas: &[&Replica],
) -> (
    String,
    Arc<FleetRouter>,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let router = Arc::new(
        FleetRouter::new(RouterConfig {
            replicas: replicas.iter().map(|r| r.addr.clone()).collect(),
            record_routes: true,
            reconnect_wait: Duration::from_millis(50),
            ..RouterConfig::default()
        })
        .unwrap(),
    );
    router.start().unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let run = Arc::clone(&router);
    let thread = std::thread::spawn(move || run.run(listener));
    (addr, router, thread)
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
}

/// A request line whose circuit varies with `variant`, so different
/// ids spread across the ring instead of collapsing onto one key.
fn request_line(id: &str, variant: usize) -> String {
    let family = if variant.is_multiple_of(2) {
        BenchmarkFamily::Ghz
    } else {
        BenchmarkFamily::Dj
    };
    let qc = family.generate(2 + (variant as u32 / 2) % 2);
    let objective = ["fidelity", "critical_depth", "combination"][variant % 3];
    format!(
        r#"{{"id":"{id}","qasm":{},"objective":"{objective}"}}"#,
        serde_json::to_string(&serde_json::Value::from(qrc_circuit::qasm::to_qasm(&qc)))
    )
}

#[test]
fn fleet_routes_merges_stats_and_survives_replica_loss() {
    let service = tiny_service();
    let a = start_replica(&service);
    let b = start_replica(&service);
    let (addr, router, router_thread) = start_router(&[&a, &b]);

    let stream = connect(&addr);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut line = String::new();

    // Phase 1: both replicas healthy. Every request must come back ok.
    for i in 0..12 {
        writeln!(writer, "{}", request_line(&format!("p1-{i}"), i)).unwrap();
    }
    writer.flush().unwrap();
    for _ in 0..12 {
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains(r#""ok":true"#), "phase-1 failure: {line}");
    }

    // Merged stats nest both replicas and sum their counters.
    writeln!(writer, r#"{{"cmd":"stats"}}"#).unwrap();
    writer.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains(r#""fleet""#), "no fleet block: {line}");
    assert!(line.contains(&a.addr) && line.contains(&b.addr));

    // Consistent hashing: identical repeated traffic stays put, so
    // every distinct key was owned by exactly one replica.
    for (key, owners) in router.route_log() {
        assert_eq!(owners.len(), 1, "key {key:#x} bounced between replicas");
    }
    let counters = router.replica_counters();
    let routed: Vec<u64> = counters.iter().map(|c| c.1).collect();
    assert!(
        routed.iter().all(|&n| n > 0),
        "one replica never saw traffic: {routed:?}"
    );

    // Phase 2: replica A dies mid-stream. The router must eject it,
    // reroute, and keep answering — zero lost or failed requests.
    a.shutdown.request();
    a.server.join().unwrap().unwrap();
    for i in 0..12 {
        writeln!(writer, "{}", request_line(&format!("p2-{i}"), i)).unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains(r#""ok":true"#), "post-loss failure: {line}");
    }
    let counters = router.replica_counters();
    let alive = counters.iter().filter(|c| c.5).count();
    assert_eq!(alive, 1, "dead replica not ejected: {counters:?}");

    // Clean drain: shutdown drains the router; replica B keeps
    // running until we stop it ourselves.
    writeln!(writer, r#"{{"cmd":"shutdown"}}"#).unwrap();
    writer.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains(r#""ok":true"#), "shutdown reply: {line}");
    drop(writer);
    drop(reader);
    router_thread.join().unwrap().unwrap();

    b.shutdown.request();
    b.server.join().unwrap().unwrap();
}
