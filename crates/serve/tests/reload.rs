//! Hot-reload race tests: the registry swap must never drop or fail a
//! request, and a torn/corrupt checkpoint appearing mid-swap must
//! quarantine to `.corrupt` while the old shard keeps serving.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use qrc_benchgen::BenchmarkFamily;
use qrc_predictor::{train, PredictorConfig, RewardKind, TrainedPredictor};
use qrc_rl::PpoConfig;
use qrc_serve::{
    CompilationService, DeviceClass, ModelRegistry, ServeRequest, ServiceConfig, ShardKey,
    WidthBand,
};

fn tiny_model(reward: RewardKind, seed: u64) -> TrainedPredictor {
    let suite = vec![
        BenchmarkFamily::Ghz.generate(3),
        BenchmarkFamily::Dj.generate(3),
    ];
    let config = PredictorConfig {
        reward,
        total_timesteps: 1200,
        ppo: PpoConfig {
            steps_per_update: 128,
            minibatch_size: 32,
            epochs: 4,
            hidden: vec![24],
            learning_rate: 1e-3,
            ..PpoConfig::default()
        },
        seed,
        step_penalty: 0.005,
    };
    train(suite, &config)
}

/// A scratch directory under the system temp dir, unique per test.
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qrc_reload_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bell_request(id: &str) -> ServeRequest {
    let mut qc = qrc_circuit::QuantumCircuit::new(2);
    qc.h(0).cx(0, 1).measure_all();
    let mut request = ServeRequest::new(qrc_circuit::qasm::to_qasm(&qc));
    request.id = Some(id.to_string());
    request
}

/// Starts a dir-backed service from pre-saved tiny checkpoints (a warm
/// start: nothing trains).
fn warm_service(dir: &std::path::Path) -> Arc<CompilationService> {
    for reward in RewardKind::ALL {
        tiny_model(reward, 5)
            .save(&ModelRegistry::model_path(dir, ShardKey::wildcard(reward)))
            .unwrap();
    }
    Arc::new(
        CompilationService::start(&ServiceConfig {
            models_dir: dir.to_path_buf(),
            verbose: false,
            ..ServiceConfig::default()
        })
        .unwrap(),
    )
}

#[test]
fn reload_under_load_drops_nothing_and_quarantines_torn_checkpoints() {
    let dir = scratch_dir("swap");
    let service = warm_service(&dir);

    // Load generators: worker threads hammer the service while the
    // main thread swaps the registry underneath them. Every response
    // must be ok — zero failed requests across every reload.
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..3)
        .map(|w| {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> (u64, u64) {
                let mut ok = 0u64;
                let mut failed = 0u64;
                let mut i = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let batch = [
                        bell_request(&format!("w{w}-{i}-a")),
                        bell_request(&format!("w{w}-{i}-b")),
                    ];
                    for response in service.handle_batch(&batch) {
                        match response.result {
                            Ok(_) => ok += 1,
                            Err(_) => failed += 1,
                        }
                    }
                    i += 1;
                }
                (ok, failed)
            })
        })
        .collect();

    let narrow_key = ShardKey {
        objective: RewardKind::ExpectedFidelity,
        device_class: DeviceClass::Any,
        width_band: WidthBand::Narrow,
    };
    let narrow_path = ModelRegistry::model_path(&dir, narrow_key);

    // Swap 1: a torn checkpoint appears (a crashed trainer wrote half
    // a file). Reload must quarantine it and keep serving.
    std::fs::write(&narrow_path, "{\"format\":\"qrc-trained-pred").unwrap();
    let report = service.reload().unwrap();
    assert_eq!(report.quarantined, vec![narrow_key.file_name()]);
    assert!(
        ModelRegistry::quarantine_path(&narrow_path).exists(),
        "torn bytes preserved as .corrupt"
    );
    assert!(!narrow_path.exists(), "torn file moved out of the way");
    assert_eq!(
        service.registry().keys(),
        RewardKind::ALL.map(ShardKey::wildcard).to_vec(),
        "the torn shard never entered the registry"
    );

    // Swap 2: a valid narrow-band specialist lands on disk. Reload
    // must pick it up and narrow traffic must route to it.
    tiny_model(RewardKind::ExpectedFidelity, 11)
        .save(&narrow_path)
        .unwrap();
    let report = service.reload().unwrap();
    assert!(report.loaded.contains(&narrow_key));
    assert!(service.registry().keys().contains(&narrow_key));

    // Swap 3: the *existing wildcard* checkpoint is corrupted on disk.
    // The in-memory policy must keep serving (kept, not dropped).
    let wildcard_path =
        ModelRegistry::model_path(&dir, ShardKey::wildcard(RewardKind::CriticalDepth));
    std::fs::write(&wildcard_path, "garbage").unwrap();
    let report = service.reload().unwrap();
    assert_eq!(
        report.kept,
        vec![ShardKey::wildcard(RewardKind::CriticalDepth)],
        "the corrupted shard keeps its previously loaded policy"
    );
    assert!(ModelRegistry::quarantine_path(&wildcard_path).exists());
    let critical = bell_request("critical-after-corrupt");
    let mut critical = critical;
    critical.objective = RewardKind::CriticalDepth;
    let responses = service.handle_batch(std::slice::from_ref(&critical));
    assert!(
        responses[0].result.is_ok(),
        "the kept shard still answers: {:?}",
        responses[0].result
    );

    stop.store(true, Ordering::SeqCst);
    let mut total_ok = 0u64;
    for worker in workers {
        let (ok, failed) = worker.join().unwrap();
        assert_eq!(failed, 0, "hot-reload under load must fail zero requests");
        total_ok += ok;
    }
    assert!(total_ok > 0, "the load generators actually ran");
    assert_eq!(service.reload_count(), 3);

    // Stats confirm what the operator needs to see after a reload:
    // shard keys, checkpoint mtimes, and the reload count.
    let stats = serde_json::to_string(&service.stats_value());
    assert!(stats.contains("\"registry\""), "{stats}");
    assert!(stats.contains("\"fidelity/any/narrow\""), "{stats}");
    assert!(stats.contains("\"mtime_epoch_secs\""), "{stats}");
    assert!(
        stats.contains("\"reloads\": 3") || stats.contains("\"reloads\":3"),
        "{stats}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reload_routes_new_traffic_to_fresh_shards_while_old_batches_finish() {
    let dir = scratch_dir("routes");
    let service = warm_service(&dir);

    // Before: narrow fidelity traffic falls back to the wildcard.
    let request = bell_request("pre-reload");
    let response = &service.handle_batch(std::slice::from_ref(&request))[0];
    assert!(response.result.is_ok());
    let shard_of = |response: &qrc_serve::ServeResponse| {
        response
            .body_value()
            .get("shard")
            .and_then(|s| s.as_str())
            .map(str::to_string)
            .expect("routed responses echo their shard")
    };
    assert_eq!(shard_of(response), "fidelity/any/any");

    // A narrow specialist lands; after reload the same request routes
    // to it (and recomputes — the cache is partitioned by shard).
    let narrow_key = ShardKey {
        objective: RewardKind::ExpectedFidelity,
        device_class: DeviceClass::Any,
        width_band: WidthBand::Narrow,
    };
    tiny_model(RewardKind::ExpectedFidelity, 23)
        .save(&ModelRegistry::model_path(&dir, narrow_key))
        .unwrap();
    service.reload().unwrap();
    let response = &service.handle_batch(std::slice::from_ref(&request))[0];
    assert!(response.result.is_ok());
    assert_eq!(shard_of(response), "fidelity/any/narrow");

    // Swapping an existing shard's checkpoint must invalidate its
    // cached results: without generation-partitioned cache keys, the
    // popular request below would keep hitting the OLD policy's cached
    // answer forever after the reload.
    let mut cd_request = bell_request("cd-cache");
    cd_request.objective = RewardKind::CriticalDepth;
    let cache_of = |response: &qrc_serve::ServeResponse| {
        response
            .body_value()
            .get("cache")
            .and_then(|s| s.as_str())
            .map(str::to_string)
            .unwrap()
    };
    let first = &service.handle_batch(std::slice::from_ref(&cd_request))[0];
    assert_eq!(cache_of(first), "miss");
    let second = &service.handle_batch(std::slice::from_ref(&cd_request))[0];
    assert_eq!(cache_of(second), "hit", "primed: the entry is resident");
    // A retrained policy replaces the checkpoint immediately — no
    // mtime-granularity dodge needed: the rescan compares provenance
    // at full filesystem precision (path, mtime, length), so even a
    // same-second swap is detected.
    tiny_model(RewardKind::CriticalDepth, 41)
        .save(&ModelRegistry::model_path(
            &dir,
            ShardKey::wildcard(RewardKind::CriticalDepth),
        ))
        .unwrap();
    let report = service.reload().unwrap();
    assert!(
        report.invalidated >= 1,
        "the swapped shard's cached entries are purged: {report:?}"
    );
    let after = &service.handle_batch(std::slice::from_ref(&cd_request))[0];
    assert_eq!(
        cache_of(after),
        "miss",
        "a swapped-in policy recomputes instead of replaying its predecessor's cache"
    );

    // An untouched checkpoint keeps its warm cache across reloads.
    let warm = &service.handle_batch(std::slice::from_ref(&request))[0];
    assert_eq!(cache_of(warm), "hit");
    service.reload().unwrap();
    let still_warm = &service.handle_batch(std::slice::from_ref(&request))[0];
    assert_eq!(
        cache_of(still_warm),
        "hit",
        "a no-op reload must not cold-start unchanged shards"
    );

    // An in-memory service has nothing to rescan: reload fails
    // gracefully and keeps serving.
    let in_memory = CompilationService::with_registry(
        ModelRegistry::from_models(vec![tiny_model(RewardKind::ExpectedFidelity, 5)]),
        &ServiceConfig {
            verbose: false,
            ..ServiceConfig::default()
        },
    );
    assert!(in_memory.reload().is_err());
    let reply = serde_json::to_string(&in_memory.reload_value());
    assert!(
        reply.contains("\"ok\": false") || reply.contains("\"ok\":false"),
        "{reply}"
    );
    assert!(
        in_memory.handle_batch(std::slice::from_ref(&request))[0]
            .result
            .is_ok(),
        "a failed reload never stops the service"
    );
    std::fs::remove_dir_all(&dir).ok();
}
