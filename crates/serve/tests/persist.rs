//! The restart-equivalence suite: a server warmed from a persisted
//! cache snapshot must answer every request byte-identically to a cold
//! (or never-restarted) server, a torn snapshot must quarantine and
//! cold-start cleanly, and a snapshot must never resurrect an answer
//! from a checkpoint that changed since it was taken. Plus a proptest
//! that snapshot export → import round-trips arbitrary cache states
//! with LRU recency order preserved, and a concurrency test that
//! `{"cmd":"snapshot"}`-style snapshots under load and around reloads
//! drop nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use qrc_benchgen::BenchmarkFamily;
use qrc_device::DeviceId;
use qrc_predictor::{train, PredictorConfig, RewardKind, TrainedPredictor};
use qrc_rl::PpoConfig;
use qrc_serve::persist::{
    load_snapshot_file, snapshot_path, CacheSnapshot, PersistedEntry, SnapshotLoad,
};
use qrc_serve::{
    CacheKey, CompilationService, CompiledResult, ModelRegistry, ResultCache, ServeRequest,
    ServeResponse, ServiceConfig, ShardKey,
};

fn tiny_model(reward: RewardKind, seed: u64) -> TrainedPredictor {
    let suite = vec![
        BenchmarkFamily::Ghz.generate(3),
        BenchmarkFamily::Dj.generate(3),
    ];
    let config = PredictorConfig {
        reward,
        total_timesteps: 1200,
        ppo: PpoConfig {
            steps_per_update: 128,
            minibatch_size: 32,
            epochs: 4,
            hidden: vec![24],
            learning_rate: 1e-3,
            ..PpoConfig::default()
        },
        seed,
        step_penalty: 0.005,
    };
    train(suite, &config)
}

/// A scratch directory under the system temp dir, unique per test.
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qrc_persist_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Saves tiny wildcard checkpoints so `dir_service` warm-starts
/// without training; a different `seed` writes different policies (the
/// "checkpoint changed since snapshot" case re-saves one shard).
fn save_models(dir: &std::path::Path, seed: u64) {
    for reward in RewardKind::ALL {
        tiny_model(reward, seed)
            .save(&ModelRegistry::model_path(dir, ShardKey::wildcard(reward)))
            .unwrap();
    }
}

fn dir_service(dir: &std::path::Path) -> Arc<CompilationService> {
    Arc::new(
        CompilationService::start(&ServiceConfig {
            models_dir: dir.to_path_buf(),
            verbose: false,
            ..ServiceConfig::default()
        })
        .unwrap(),
    )
}

/// A deterministic mixed-device, mixed-objective request stream with
/// repeats (so snapshots have both breadth and hot keys).
fn mixed_traffic() -> Vec<ServeRequest> {
    let mut bell = qrc_circuit::QuantumCircuit::new(2);
    bell.h(0).cx(0, 1).measure_all();
    let mut ghz = qrc_circuit::QuantumCircuit::new(3);
    ghz.h(0).cx(0, 1).cx(1, 2).measure_all();
    let mut flip = qrc_circuit::QuantumCircuit::new(2);
    flip.x(0).x(1).measure_all();
    let circuits = [bell, ghz, flip].map(|qc| qrc_circuit::qasm::to_qasm(&qc));
    let pins = [None, Some(DeviceId::IonqHarmony), Some(DeviceId::OqcLucy)];
    let mut requests = Vec::new();
    let mut n = 0;
    for (c, qasm) in circuits.iter().enumerate() {
        for objective in RewardKind::ALL {
            let mut request = ServeRequest::new(qasm.clone());
            request.id = Some(format!("r{n}"));
            request.objective = objective;
            request.device_pin = pins[(c + n) % pins.len()];
            requests.push(request);
            n += 1;
        }
    }
    // Hot head: repeat the first third of the uniques (fresh ids).
    for repeat in 0..requests.len() / 3 {
        let mut dup = requests[repeat].clone();
        dup.id = Some(format!("dup{repeat}"));
        requests.push(dup);
    }
    requests
}

fn payload_lines(responses: &[ServeResponse]) -> Vec<String> {
    responses
        .iter()
        .map(|r| serde_json::to_string(&r.payload_value()))
        .collect()
}

#[test]
fn warmed_restart_answers_byte_identically_with_warm_hits() {
    let dir = scratch_dir("equiv");
    save_models(&dir, 5);
    let traffic = mixed_traffic();

    // The never-restarted reference run, then a snapshot mid-life.
    let original = dir_service(&dir);
    let reference = payload_lines(&original.handle_batch(&traffic));
    assert!(
        reference.iter().all(|l| l.contains("\"ok\":true")),
        "reference run must fully succeed"
    );
    let written = original.write_snapshot().unwrap();
    assert!(written.entries > 0, "a primed cache persists entries");
    assert_eq!(written.skipped, 0, "dir-backed shards are all provable");
    drop(original);

    // Cold restart: same checkpoints, empty cache.
    let cold = dir_service(&dir);
    let cold_lines = payload_lines(&cold.handle_batch(&traffic));
    assert_eq!(reference, cold_lines, "cold restart is byte-identical");
    assert_eq!(
        cold.metrics().cache.warm_hits,
        0,
        "a cold start has nothing warm to hit"
    );

    // Warmed restart: snapshot imported before the first request.
    let warmed = dir_service(&dir);
    let report = warmed.load_snapshot().unwrap();
    assert_eq!(report.loaded, written.entries);
    assert_eq!(report.stale_dropped, 0);
    assert!(!report.quarantined && !report.missing);
    let warm = warmed.finish_warmup();
    assert_eq!(warm, written.entries);
    assert_eq!(warmed.warm_entries(), warm);

    let warmed_lines = payload_lines(&warmed.handle_batch(&traffic));
    assert_eq!(reference, warmed_lines, "warmed restart is byte-identical");
    let stats = warmed.metrics();
    assert!(
        stats.cache.warm_hits > 0,
        "warmed restart serves from pre-warmed entries: {:?}",
        stats.cache
    );
    assert_eq!(
        stats.cache.misses, 0,
        "every unique job was persisted, so nothing recompiles"
    );
    assert_eq!(
        stats.hit_responses,
        traffic.len() as u64,
        "every request is answered from the warmed cache"
    );
    // The persistence block is visible to operators.
    let stats_text = serde_json::to_string(&warmed.stats_value());
    assert!(stats_text.contains("\"warm_entries\""), "{stats_text}");
    assert!(stats_text.contains("\"warm_hits\""), "{stats_text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_snapshot_quarantines_and_cold_starts_cleanly() {
    let dir = scratch_dir("torn");
    save_models(&dir, 5);
    let traffic = mixed_traffic();
    let original = dir_service(&dir);
    original.handle_batch(&traffic);
    original.write_snapshot().unwrap();
    drop(original);

    // Truncate the snapshot mid-entry: a crash during a write that
    // somehow bypassed the atomic rename, or disk corruption.
    let path = snapshot_path(&dir);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();

    let restarted = dir_service(&dir);
    let report = restarted.load_snapshot().unwrap();
    assert!(report.quarantined, "torn snapshot detected: {report:?}");
    assert_eq!(report.loaded, 0);
    assert!(
        ModelRegistry::quarantine_path(&path).exists(),
        "torn bytes preserved as .corrupt for post-mortems"
    );
    assert!(!path.exists(), "torn file moved out of the way");
    assert_eq!(restarted.finish_warmup(), 0, "cold start");

    // The service still answers everything, identically to a cold run.
    let responses = restarted.handle_batch(&traffic);
    assert!(
        responses.iter().all(|r| r.result.is_ok()),
        "a quarantined snapshot never breaks serving"
    );
    // And a second load after quarantine sees a genuinely missing file.
    let again = dir_service(&dir);
    assert!(again.load_snapshot().unwrap().missing);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_never_resurrects_answers_from_a_changed_checkpoint() {
    let dir = scratch_dir("stale");
    save_models(&dir, 5);
    let traffic = mixed_traffic();
    let original = dir_service(&dir);
    original.handle_batch(&traffic);
    let written = original.write_snapshot().unwrap();
    drop(original);

    // The critical-depth checkpoint is replaced by a retrained policy
    // before the restart (a deploy landed between snapshot and boot).
    let cd = ShardKey::wildcard(RewardKind::CriticalDepth);
    tiny_model(RewardKind::CriticalDepth, 41)
        .save(&ModelRegistry::model_path(&dir, cd))
        .unwrap();

    let restarted = dir_service(&dir);
    let report = restarted.load_snapshot().unwrap();
    assert!(
        report.stale_dropped > 0,
        "entries of the swapped shard are dropped: {report:?}"
    );
    assert_eq!(
        report.loaded + report.stale_dropped,
        written.entries,
        "every persisted entry is either imported or dropped, never lost"
    );
    restarted.finish_warmup();

    // The swapped shard recomputes under its *new* policy; unchanged
    // shards serve warm. The proof of non-resurrection: the restarted
    // answers equal a fully cold service's answers on the same disk
    // state, for every request.
    let restarted_lines = payload_lines(&restarted.handle_batch(&traffic));
    let stats = restarted.metrics();
    assert!(
        stats.cache.misses > 0,
        "the swapped shard's requests recompute: {:?}",
        stats.cache
    );
    assert!(
        stats.cache.warm_hits > 0,
        "unchanged shards still serve warm: {:?}",
        stats.cache
    );
    let cold = dir_service(&dir);
    let cold_lines = payload_lines(&cold.handle_batch(&traffic));
    assert_eq!(
        restarted_lines, cold_lines,
        "a stale-snapshot restart answers exactly like a cold start on the new checkpoint"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recalibration_drops_exactly_that_devices_fidelity_entries_on_reload() {
    use qrc_device::{
        CalibrationSpec, DeviceRegistry, DeviceSource, DeviceSpec, Platform, ProfileSpec,
        TopologySpec,
    };
    let dir = scratch_dir("calibration");
    save_models(&dir, 5);
    // A dynamic device unique to this test: the registry is global and
    // tests share one process, so built-ins are never recalibrated.
    let ring = DeviceRegistry::register(
        DeviceSpec::synthetic(
            "persist_test_ring_9",
            Platform::Oqc,
            TopologySpec::Ring { qubits: 9 },
        ),
        DeviceSource::Runtime,
    )
    .unwrap();

    // Every objective × {dynamic pin, built-in pin}: six unique jobs.
    let mut bell = qrc_circuit::QuantumCircuit::new(2);
    bell.h(0).cx(0, 1).measure_all();
    let qasm = qrc_circuit::qasm::to_qasm(&bell);
    let mut traffic = Vec::new();
    for (i, pin) in [Some(ring), Some(DeviceId::IonqHarmony)]
        .into_iter()
        .enumerate()
    {
        for objective in RewardKind::ALL {
            let mut request = ServeRequest::new(qasm.clone());
            request.id = Some(format!("c{i}-{objective}"));
            request.objective = objective;
            request.device_pin = pin;
            traffic.push(request);
        }
    }

    let original = dir_service(&dir);
    let reference = payload_lines(&original.handle_batch(&traffic));
    assert!(
        reference.iter().all(|l| l.contains("\"ok\":true")),
        "{reference:?}"
    );
    let written = original.write_snapshot().unwrap();
    assert_eq!(written.entries, traffic.len() as u64);
    drop(original);

    // The ring is recalibrated between snapshot and restart (different
    // synthetic seed → different error rates, same structure).
    DeviceRegistry::calibrate(
        ring,
        CalibrationSpec::Synthetic {
            profile: ProfileSpec::Named("superconducting_oqc".into()),
            seed: Some("persist_test_ring_9_recal".into()),
        },
    )
    .unwrap();

    let restarted = dir_service(&dir);
    let report = restarted.load_snapshot().unwrap();
    // Exactly the recalibrated device's calibration-keyed entries drop
    // (fidelity + combination on the ring); its critical-depth entry
    // and every built-in entry stay warm.
    assert_eq!(report.calibration_dropped, 2, "{report:?}");
    assert_eq!(report.stale_dropped, 0, "{report:?}");
    assert_eq!(report.unknown_skipped, 0, "{report:?}");
    assert_eq!(report.loaded, written.entries - 2);
    restarted.finish_warmup();

    let after = payload_lines(&restarted.handle_batch(&traffic));
    let mut changed = 0;
    for ((request, before), now) in traffic.iter().zip(&reference).zip(&after) {
        if request.device_pin == Some(ring) && request.objective.uses_calibration() {
            assert_ne!(
                before, now,
                "recalibrated fidelity answers change: {:?}",
                request.id
            );
            changed += 1;
        } else {
            assert_eq!(
                before, now,
                "non-calibration answers stay byte-identical: {:?}",
                request.id
            );
        }
    }
    assert_eq!(changed, 2);
    let stats = restarted.metrics();
    assert_eq!(
        stats.cache.misses, 2,
        "only the dropped entries recompute: {:?}",
        stats.cache
    );
    assert!(stats.cache.warm_hits >= 4, "{:?}", stats.cache);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_under_load_and_around_reloads_drops_nothing() {
    let dir = scratch_dir("race");
    save_models(&dir, 5);
    let service = dir_service(&dir);

    // Same harness style as tests/reload.rs: 3 worker threads hammer
    // the service while the main thread snapshots and reloads in both
    // orders. Every response must be ok.
    let stop = Arc::new(AtomicBool::new(false));
    let traffic = mixed_traffic();
    let workers: Vec<_> = (0..3)
        .map(|w| {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let traffic = traffic.clone();
            std::thread::spawn(move || -> (u64, u64) {
                let mut ok = 0u64;
                let mut failed = 0u64;
                let mut i = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let mut request = traffic[i % traffic.len()].clone();
                    request.id = Some(format!("w{w}-{i}"));
                    for response in service.handle_batch(std::slice::from_ref(&request)) {
                        match response.result {
                            Ok(_) => ok += 1,
                            Err(_) => failed += 1,
                        }
                    }
                    i += 1;
                }
                (ok, failed)
            })
        })
        .collect();

    // snapshot → reload → snapshot → reload, interleaved with load.
    let first = service.write_snapshot().unwrap();
    service.reload().unwrap();
    let second = service.write_snapshot().unwrap();
    service.reload().unwrap();
    assert!(second.entries >= first.entries.min(1));

    stop.store(true, Ordering::SeqCst);
    let mut total_ok = 0u64;
    for worker in workers {
        let (ok, failed) = worker.join().unwrap();
        assert_eq!(failed, 0, "snapshot/reload under load fails zero requests");
        total_ok += ok;
    }
    assert!(total_ok > 0, "the load generators actually ran");

    // The final snapshot on disk is structurally valid and restorable.
    match load_snapshot_file(&snapshot_path(&dir)).unwrap() {
        SnapshotLoad::Loaded(snapshot) => {
            assert_eq!(snapshot.entries.len() as u64, second.entries);
        }
        other => panic!("expected a valid snapshot, got {other:?}"),
    }
    let warmed = dir_service(&dir);
    let report = warmed.load_snapshot().unwrap();
    assert_eq!(
        report.loaded + report.stale_dropped,
        second.entries,
        "the mid-load snapshot restores (stale only if a reload raced a write)"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Property: snapshot export → import round-trips arbitrary cache
// states with per-shard LRU recency preserved, so a warmed cache
// evicts in the same order a never-restarted one would.

/// A strategy over shard keys drawn from the full key space (the
/// vendored proptest has no `sample::select`; index ranges do the job).
fn shard_key_strategy() -> impl Strategy<Value = ShardKey> {
    let bands = [
        qrc_serve::WidthBand::Any,
        qrc_serve::WidthBand::Narrow,
        qrc_serve::WidthBand::Medium,
        qrc_serve::WidthBand::Wide,
    ];
    let classes = qrc_serve::DeviceClass::all();
    let class_count = classes.len();
    (0..RewardKind::ALL.len(), 0..class_count, 0..bands.len()).prop_map(move |(o, c, b)| ShardKey {
        objective: RewardKind::ALL[o],
        device_class: classes[c],
        width_band: bands[b],
    })
}

fn pin_strategy() -> impl Strategy<Value = Option<DeviceId>> {
    (0..=DeviceId::ALL.len()).prop_map(|i| match i {
        0 => None,
        i => Some(DeviceId::ALL[i - 1]),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn snapshot_round_trips_arbitrary_cache_states(
        circuits in proptest::collection::vec(
            qrc_circuit::strategies::circuit(1..=5u32, 12), 1..16),
        pins in proptest::collection::vec(pin_strategy(), 16),
        shards in proptest::collection::vec(shard_key_strategy(), 16),
        touches in proptest::collection::vec(0..16usize, 0..24),
        capacity in 4..48usize,
        cache_shards in 1..6usize,
    ) {
        // Build a cache state from random circuits, pins, and shards.
        let cache = ResultCache::new(capacity, cache_shards);
        let mut keys = Vec::new();
        for (i, qc) in circuits.iter().enumerate() {
            let key = CacheKey {
                circuit_hash: qc.structural_hash(),
                device_pin: pins[i % pins.len()],
                shard: shards[i % shards.len()],
                generation: 0,
            };
            let result = Arc::new(CompiledResult {
                qasm: qrc_circuit::qasm::to_qasm(qc),
                device: pins[(i + 1) % pins.len()],
                actions: vec![format!("a{i}"), "terminate".into()],
                reward: i as f64 / 7.0,
            });
            cache.insert(key, result);
            keys.push(key);
        }
        // Random recency shuffling: touched entries become recent.
        for t in touches {
            cache.get(&keys[t % keys.len()]);
        }

        // Export → NDJSON → import into an identically shaped cache.
        let exported = cache.export();
        let snapshot = CacheSnapshot {
            shards: vec![],
            devices: vec![],
            skipped_unknown: 0,
            entries: exported
                .iter()
                .map(|(key, value)| PersistedEntry {
                    circuit_hash: key.circuit_hash,
                    device_pin: key.device_pin,
                    shard: key.shard,
                    result: (**value).clone(),
                })
                .collect(),
        };
        let decoded = CacheSnapshot::from_ndjson(&snapshot.to_ndjson()).unwrap();
        prop_assert_eq!(&decoded, &snapshot, "NDJSON round trip is lossless");

        let restored = ResultCache::new(capacity, cache_shards);
        restored.import(decoded.entries.into_iter().map(|entry| {
            (
                CacheKey {
                    circuit_hash: entry.circuit_hash,
                    device_pin: entry.device_pin,
                    shard: entry.shard,
                    generation: 0,
                },
                Arc::new(entry.result),
            )
        }));

        // Same entries, same values, same per-shard recency order —
        // so both caches would evict victims in the same order.
        let round_tripped = restored.export();
        prop_assert_eq!(round_tripped.len(), exported.len());
        for ((ka, va), (kb, vb)) in exported.iter().zip(round_tripped.iter()) {
            prop_assert_eq!(ka, kb);
            prop_assert_eq!(&**va, &**vb);
        }
    }
}
