//! Regression tests for SIGTERM draining in the stdin front ends.
//!
//! Before the fix, a TERM delivered while the pipelined or blocking
//! stdin loop was parked in a blocking `read_line` never interrupted
//! the read (glibc's `signal()` implies `SA_RESTART`), so the process
//! either hung until the next input line or died with exit 143 from
//! the raw default disposition. Now every front end shares the
//! drain-on-TERM path: answer everything already read, flush, and
//! exit 0.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Spawns the real `qrc-serve` binary against a private freshly
/// trained model directory (tiny budget: this is a drain test, not a
/// quality test).
fn spawn_server(name: &str, extra: &[&str]) -> (Child, std::path::PathBuf) {
    let models = std::env::temp_dir().join(format!("qrc_drain_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&models);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_qrc-serve"));
    cmd.arg("--models")
        .arg(&models)
        .args(["--timesteps", "600", "--train-max-qubits", "3", "--quiet"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    (cmd.spawn().expect("spawn qrc-serve"), models)
}

fn bell_line(id: &str) -> String {
    let mut qc = qrc_circuit::QuantumCircuit::new(2);
    qc.h(0).cx(0, 1).measure_all();
    format!(
        r#"{{"id":"{id}","qasm":{}}}"#,
        serde_json::to_string(&serde_json::Value::from(qrc_circuit::qasm::to_qasm(&qc)))
    )
}

/// Waits for the child to exit, failing the test if it is still alive
/// after the deadline (the pre-fix hang mode).
fn wait_with_deadline(child: &mut Child, deadline: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if start.elapsed() > deadline {
            let _ = child.kill();
            panic!("server did not exit within {deadline:?} after SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Drives one server: answer a request to prove it is up, TERM it
/// while its reader is parked on the open-but-quiet stdin pipe, and
/// require a clean exit-0 drain.
fn term_drains_cleanly(name: &str, extra: &[&str]) {
    let (mut child, models) = spawn_server(name, extra);
    let mut stdin = child.stdin.take().expect("stdin handle");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout handle"));

    writeln!(stdin, "{}", bell_line("warm")).expect("write request");
    stdin.flush().expect("flush request");
    let mut reply = String::new();
    stdout.read_line(&mut reply).expect("read reply");
    assert!(
        reply.contains(r#""ok":true"#),
        "warmup request failed: {reply}"
    );

    // Stdin stays open: the reader thread is now parked in a blocking
    // read that SIGTERM cannot interrupt. The drain loop must notice
    // the flag on its own.
    let pid = child.id().to_string();
    let killed = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("send SIGTERM");
    assert!(killed.success(), "kill -TERM failed");

    let status = wait_with_deadline(&mut child, Duration::from_secs(60));
    assert!(
        status.success(),
        "expected exit 0 after SIGTERM drain, got {status:?}"
    );
    drop(stdin);
    let _ = std::fs::remove_dir_all(models);
}

#[test]
fn sigterm_drains_pipelined_stdin_with_exit_zero() {
    term_drains_cleanly("pipelined", &[]);
}

#[test]
fn sigterm_drains_blocking_stdin_with_exit_zero() {
    term_drains_cleanly("blocking", &["--blocking"]);
}
