//! Property tests for the consistent-hash ring behind `qrc-lb`.
//!
//! Two invariants the router leans on:
//!
//! * **balance** — with enough virtual nodes (the router defaults to
//!   64 per replica) no replica owns a wildly outsized share of the
//!   key space, so replica caches stay comparably warm,
//! * **minimal disruption** — removing one replica moves only the
//!   keys that replica owned; every other key keeps its assignment,
//!   so an ejection never cold-starts the survivors' caches.

use proptest::prelude::*;
use qrc_serve::{splitmix64, HashRing};

/// A deterministic spread of keys: splitmix64 of consecutive integers
/// is as close to uniform as the ring's own point hashing, which is
/// exactly the population the ring routes in production (`mix_key`
/// output is splitmix64-finalized too).
fn keys(n: u64) -> impl Iterator<Item = u64> {
    (0..n).map(splitmix64)
}

/// Builds a ring of `replicas` members labelled the way the router
/// labels them (by address string; here a synthetic stand-in).
fn ring_of(replicas: usize, vnodes: usize) -> HashRing {
    let mut ring = HashRing::new(vnodes);
    for r in 0..replicas {
        ring.insert(r, &format!("replica-{r}"));
    }
    ring
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At >= 64 vnodes each replica's share of a large uniform key
    /// population stays within tolerance of fair: no replica is
    /// starved below 40% of its fair share or bloated past 180%.
    #[test]
    fn balance_within_tolerance_at_64_vnodes(
        replicas in 2..8usize,
        vnodes in 64..129usize,
    ) {
        let ring = ring_of(replicas, vnodes);
        const KEYS: u64 = 4096;
        let mut counts = vec![0u64; replicas];
        for key in keys(KEYS) {
            counts[ring.route(key).unwrap()] += 1;
        }
        let fair = KEYS as f64 / replicas as f64;
        for (idx, &count) in counts.iter().enumerate() {
            let share = count as f64 / fair;
            prop_assert!(
                (0.4..=1.8).contains(&share),
                "replica-{} owns {} of {} keys ({:.2}x fair share) at {} vnodes",
                idx, count, KEYS, share, vnodes
            );
        }
    }

    /// Removing one replica moves exactly that replica's keys: every
    /// key previously owned by a survivor keeps its owner, and every
    /// orphaned key lands on some survivor.
    #[test]
    fn removal_moves_only_the_removed_replicas_keys(
        replicas in 2..8usize,
        vnodes in 64..129usize,
        removed in 0..8usize,
    ) {
        let removed = removed % replicas;
        let mut ring = ring_of(replicas, vnodes);
        let before: Vec<(u64, usize)> = keys(2048)
            .map(|k| (k, ring.route(k).unwrap()))
            .collect();
        ring.remove(removed);
        let mut moved = 0u64;
        for &(key, owner_before) in &before {
            let owner_after = ring.route(key).unwrap();
            if owner_before == removed {
                moved += 1;
                prop_assert_ne!(
                    owner_after, removed,
                    "orphaned key {} still routes to the removed replica", key
                );
            } else {
                prop_assert_eq!(
                    owner_after, owner_before,
                    "key {} owned by surviving replica-{} moved on unrelated removal",
                    key, owner_before
                );
            }
        }
        let orphaned = before.iter().filter(|&&(_, o)| o == removed).count() as u64;
        prop_assert_eq!(moved, orphaned);
    }

    /// A removed replica that rejoins reclaims exactly its old arcs:
    /// the ring's point placement depends only on (label, vnode
    /// index), never on insertion order or ring history.
    #[test]
    fn rejoin_restores_the_exact_prior_assignment(
        replicas in 2..6usize,
        vnodes in 64..97usize,
        bounced in 0..6usize,
    ) {
        let bounced = bounced % replicas;
        let mut ring = ring_of(replicas, vnodes);
        let before: Vec<(u64, usize)> = keys(1024)
            .map(|k| (k, ring.route(k).unwrap()))
            .collect();
        ring.remove(bounced);
        ring.insert(bounced, &format!("replica-{bounced}"));
        for &(key, owner_before) in &before {
            prop_assert_eq!(ring.route(key).unwrap(), owner_before);
        }
    }
}
