//! Latency-accounting regression tests: the serve metrics must report
//! each request's *own* cost.
//!
//! Two historic bugs are pinned here:
//!
//! 1. coalesced duplicates re-reported the miss's full compute time,
//!    so a batch of N duplicates added the rollout to the latency
//!    ledger N times (inflating mean/p50/p99), and
//! 2. cache hits and admission errors reported `micros: 0` on the
//!    batch path while `handle_line` measured honestly, collapsing p50
//!    toward zero at high hit rates.

use qrc_benchgen::BenchmarkFamily;
use qrc_predictor::{train, PredictorConfig, RewardKind};
use qrc_rl::PpoConfig;
use qrc_serve::{CacheStatus, CompilationService, ModelRegistry, ServeRequest, ServiceConfig};

fn tiny_models() -> Vec<qrc_predictor::TrainedPredictor> {
    let suite = vec![
        BenchmarkFamily::Ghz.generate(3),
        BenchmarkFamily::Dj.generate(3),
    ];
    RewardKind::ALL
        .into_iter()
        .map(|reward| {
            let config = PredictorConfig {
                reward,
                total_timesteps: 1200,
                ppo: PpoConfig {
                    steps_per_update: 128,
                    minibatch_size: 32,
                    epochs: 4,
                    hidden: vec![24],
                    learning_rate: 1e-3,
                    ..PpoConfig::default()
                },
                seed: 5,
                step_penalty: 0.005,
            };
            train(suite.clone(), &config)
        })
        .collect()
}

fn quiet_service() -> CompilationService {
    CompilationService::with_registry(
        ModelRegistry::from_models(tiny_models()),
        &ServiceConfig {
            verbose: false,
            ..ServiceConfig::default()
        },
    )
}

/// A wide-enough circuit that the policy rollout (milliseconds)
/// dominates QASM parsing (microseconds) by a comfortable margin.
fn heavy_qasm() -> String {
    qrc_circuit::qasm::to_qasm(&BenchmarkFamily::Ghz.generate(5))
}

fn duplicates(n: usize) -> Vec<ServeRequest> {
    let text = heavy_qasm();
    (0..n)
        .map(|i| {
            let mut r = ServeRequest::new(text.clone());
            r.id = Some(format!("dup-{i}"));
            r
        })
        .collect()
}

#[test]
fn coalesced_duplicates_do_not_rereport_the_miss_compute_time() {
    let service = quiet_service();
    let responses = service.handle_batch(&duplicates(8));
    let status = |i: usize| responses[i].result.as_ref().unwrap().1;
    assert_eq!(status(0), CacheStatus::Miss);
    let miss_us = responses[0].micros;
    assert!(miss_us > 0, "the miss carries its compute time");
    for response in &responses[1..] {
        assert_eq!(response.result.as_ref().unwrap().1, CacheStatus::Coalesced);
        // Regression: each coalesced response used to copy `miss_us`
        // verbatim. Its own cost is admission only — far below the
        // rollout it coalesced onto.
        assert!(
            response.micros < miss_us / 2,
            "coalesced {}µs should be well under the miss's {miss_us}µs",
            response.micros
        );
    }
    // The ledger holds ~one rollout, not eight: the sum of all eight
    // latencies stays far below what double-counting produced (8×).
    let sum: u64 = responses.iter().map(|r| r.micros).sum();
    assert!(
        sum < 4 * miss_us,
        "latency sum {sum}µs must not approach 8 × {miss_us}µs"
    );

    // The struct path (`handle_batch`) honors the ≥1µs floor too: a
    // replay of the same batch is all cache hits, yet none records 0.
    let hits = service.handle_batch(&duplicates(8));
    for response in &hits {
        assert_eq!(response.result.as_ref().unwrap().1, CacheStatus::Hit);
        assert!(response.micros >= 1, "hits must never record micros 0");
    }
}

#[test]
fn duplicate_replay_mean_does_not_scale_with_duplicate_count() {
    // 100% duplicate traffic at two batch widths. With honest
    // accounting the one rollout amortizes over the batch, so the mean
    // *falls* as duplicates grow; the old double-counting held the
    // mean at the full rollout cost regardless of N.
    let small = quiet_service();
    small.handle_batch(&duplicates(4));
    let mean_small = small.metrics().mean_us;

    let large = quiet_service();
    large.handle_batch(&duplicates(32));
    let mean_large = large.metrics().mean_us;

    assert!(
        mean_large < mean_small / 2.0,
        "mean at 32 duplicates ({mean_large}µs) should amortize well below \
         mean at 4 duplicates ({mean_small}µs)"
    );
}

#[test]
fn hits_and_errors_record_real_latency_on_the_batch_path() {
    let service = quiet_service();
    let good = format!(
        r#"{{"id":"h","qasm":{}}}"#,
        serde_json::to_string(&serde_json::Value::from(heavy_qasm()))
    );
    // Seed the cache, then replay the same line plus a parse error in
    // one batch.
    service.handle_lines(std::slice::from_ref(&good));
    let replies = service.handle_lines(&[good, "{not json".to_string()]);

    let hit = serde_json::from_str(&replies[0]).unwrap();
    assert_eq!(hit.get("cache").unwrap().as_str(), Some("hit"));
    let hit_us = hit.get("micros").unwrap().as_u64().unwrap();
    assert!(hit_us > 0, "batch-path hits must report real wall-clock");

    let err = serde_json::from_str(&replies[1]).unwrap();
    assert_eq!(err.get("ok").unwrap().as_bool(), Some(false));
    assert!(
        err.get("micros").unwrap().as_u64().unwrap() > 0,
        "batch-path errors must report real wall-clock"
    );
}

#[test]
fn single_line_and_batch_paths_agree_on_hit_latency() {
    // Both paths serve the same cached request; both must report real,
    // same-order-of-magnitude wall-clock (parse + admission), and both
    // must sit far below a fresh rollout.
    let service = quiet_service();
    let good = format!(
        r#"{{"id":"agree","qasm":{}}}"#,
        serde_json::to_string(&serde_json::Value::from(heavy_qasm()))
    );
    let miss = serde_json::from_str(&service.handle_line(&good)).unwrap();
    let miss_us = miss.get("micros").unwrap().as_u64().unwrap();

    let single = serde_json::from_str(&service.handle_line(&good)).unwrap();
    assert_eq!(single.get("cache").unwrap().as_str(), Some("hit"));
    let single_us = single.get("micros").unwrap().as_u64().unwrap();

    let batch_reply = &service.handle_lines(std::slice::from_ref(&good))[0];
    let batch = serde_json::from_str(batch_reply).unwrap();
    assert_eq!(batch.get("cache").unwrap().as_str(), Some("hit"));
    let batch_us = batch.get("micros").unwrap().as_u64().unwrap();

    assert!(single_us > 0 && batch_us > 0);
    assert!(
        single_us < miss_us && batch_us < miss_us,
        "hits ({single_us}µs / {batch_us}µs) must undercut the rollout ({miss_us}µs)"
    );
}
