//! End-to-end service tests: registry persistence round trip, the
//! NDJSON protocol surface, cache/metrics accounting, and device pins.

use qrc_benchgen::BenchmarkFamily;
use qrc_predictor::{train, PredictorConfig, RewardKind};
use qrc_rl::PpoConfig;
use qrc_serve::{CompilationService, ModelRegistry, ServeRequest, ServiceConfig, ShardKey};

fn tiny_models() -> Vec<qrc_predictor::TrainedPredictor> {
    let suite = vec![
        BenchmarkFamily::Ghz.generate(3),
        BenchmarkFamily::Dj.generate(3),
    ];
    RewardKind::ALL
        .into_iter()
        .map(|reward| {
            let config = PredictorConfig {
                reward,
                total_timesteps: 1200,
                ppo: PpoConfig {
                    steps_per_update: 128,
                    minibatch_size: 32,
                    epochs: 4,
                    hidden: vec![24],
                    learning_rate: 1e-3,
                    ..PpoConfig::default()
                },
                seed: 5,
                step_penalty: 0.005,
            };
            train(suite.clone(), &config)
        })
        .collect()
}

fn quiet_config() -> ServiceConfig {
    ServiceConfig {
        verbose: false,
        ..ServiceConfig::default()
    }
}

/// A scratch directory under the system temp dir, unique per test.
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qrc_serve_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bell_qasm() -> String {
    let mut qc = qrc_circuit::QuantumCircuit::new(2);
    qc.h(0).cx(0, 1).measure_all();
    qrc_circuit::qasm::to_qasm(&qc)
}

#[test]
fn registry_round_trips_through_disk() {
    let dir = scratch_dir("registry");
    let models = tiny_models();
    for model in &models {
        model
            .save(&ModelRegistry::model_path(
                &dir,
                ShardKey::wildcard(model.reward()),
            ))
            .unwrap();
    }
    let loaded = ModelRegistry::load(&dir).unwrap();
    assert_eq!(loaded.len(), 3);
    assert_eq!(loaded.kinds(), RewardKind::ALL.to_vec());
    assert_eq!(
        loaded.keys(),
        RewardKind::ALL.map(ShardKey::wildcard).to_vec()
    );

    // Loaded policies answer identically to the originals.
    let qc = BenchmarkFamily::Ghz.generate(3);
    for model in &models {
        let reloaded = loaded.get(model.reward()).unwrap();
        let a = model.compile(&qc);
        let b = reloaded.compile(&qc);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.circuit, b.circuit);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn registry_ensure_trains_once_then_loads() {
    let dir = scratch_dir("ensure");
    let suite = vec![BenchmarkFamily::Ghz.generate(3)];
    let mut trained = Vec::new();
    let registry = ModelRegistry::ensure(&dir, &suite, 600, 7, 0.005, |name| {
        trained.push(name.to_string())
    })
    .unwrap();
    assert_eq!(registry.len(), 3);
    assert_eq!(trained.len(), 3, "cold start trains every objective");

    let mut retrained = Vec::new();
    let warm = ModelRegistry::ensure(&dir, &suite, 600, 7, 0.005, |name| {
        retrained.push(name.to_string())
    })
    .unwrap();
    assert_eq!(warm.len(), 3);
    assert!(retrained.is_empty(), "warm start must train nothing");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn registry_ensure_recovers_from_torn_checkpoints() {
    let dir = scratch_dir("torn");
    let suite = vec![BenchmarkFamily::Ghz.generate(3)];
    // Cold start: all three objectives trained and persisted.
    let cold = ModelRegistry::ensure(&dir, &suite, 600, 7, 0.005, |_| {}).unwrap();
    assert_eq!(cold.len(), 3);

    // Simulate a crash mid-write: one checkpoint torn (truncated JSON),
    // plus a stale temp file from an interrupted atomic save.
    let victim = ModelRegistry::model_path(&dir, ShardKey::wildcard(RewardKind::ExpectedFidelity));
    let full = std::fs::read_to_string(&victim).unwrap();
    std::fs::write(&victim, &full[..full.len() / 2]).unwrap();
    std::fs::write(victim.with_extension("json.tmp"), "partial").unwrap();

    // A plain load refuses the torn file (strict by design) …
    assert!(matches!(
        ModelRegistry::load(&dir),
        Err(qrc_predictor::PersistError::Format(_))
    ));

    // … but ensure quarantines it and retrains exactly that objective.
    let mut retrained = Vec::new();
    let healed = ModelRegistry::ensure(&dir, &suite, 600, 7, 0.005, |name| {
        retrained.push(name.to_string())
    })
    .unwrap();
    assert_eq!(healed.len(), 3);
    assert_eq!(retrained, vec!["fidelity/any/any".to_string()]);
    let quarantined = ModelRegistry::quarantine_path(&victim);
    assert!(quarantined.exists(), "torn bytes kept for post-mortems");
    assert!(
        !victim.with_extension("json.tmp").exists(),
        "stale tmp swept"
    );

    // The healed checkpoint is a valid warm start again.
    let warm = ModelRegistry::load(&dir).unwrap();
    assert_eq!(warm.len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_checkpoint_names_migrate_to_wildcard_shards() {
    let dir = scratch_dir("legacy");
    let models = tiny_models();
    // Persist under the pre-sharding names: predictor_<objective>.json.
    for model in &models {
        model
            .save(&dir.join(format!("predictor_{}.json", model.reward().name())))
            .unwrap();
    }
    let loaded = ModelRegistry::load(&dir).unwrap();
    assert_eq!(loaded.len(), 3);
    assert_eq!(
        loaded.keys(),
        RewardKind::ALL.map(ShardKey::wildcard).to_vec(),
        "legacy names migrate to objective-only wildcard shards"
    );

    // An ensure over the same directory is a warm start: nothing
    // retrains, the legacy files keep serving.
    let mut retrained = Vec::new();
    let warm = ModelRegistry::ensure(
        &dir,
        &[BenchmarkFamily::Ghz.generate(3)],
        600,
        7,
        0.005,
        |name| retrained.push(name.to_string()),
    )
    .unwrap();
    assert_eq!(warm.len(), 3);
    assert!(retrained.is_empty(), "legacy checkpoints are a warm start");

    // When both spellings exist for one shard, the explicit one wins.
    let explicit =
        ModelRegistry::model_path(&dir, ShardKey::wildcard(RewardKind::ExpectedFidelity));
    models[0].save(&explicit).unwrap();
    std::fs::write(
        dir.join("predictor_fidelity.json"),
        "{definitely not a checkpoint",
    )
    .unwrap();
    let shadowed = ModelRegistry::load(&dir).unwrap();
    assert_eq!(
        shadowed.len(),
        3,
        "the corrupt legacy file is shadowed by the explicit checkpoint"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn routing_falls_back_most_specific_first() {
    use qrc_serve::{DeviceClass, RouteLevel, WidthBand};

    let models = tiny_models();
    let fidelity = models
        .iter()
        .find(|m| m.reward() == RewardKind::ExpectedFidelity)
        .unwrap()
        .clone();
    let narrow_key = ShardKey {
        objective: RewardKind::ExpectedFidelity,
        device_class: DeviceClass::Any,
        width_band: WidthBand::Narrow,
    };
    let ionq_key = ShardKey {
        objective: RewardKind::ExpectedFidelity,
        device_class: DeviceClass::Class(qrc_device::Platform::Ionq),
        width_band: WidthBand::Any,
    };
    let registry = ModelRegistry::from_shards(vec![
        (
            ShardKey::wildcard(RewardKind::ExpectedFidelity),
            fidelity.clone(),
        ),
        (narrow_key, fidelity.clone()),
        (ionq_key, fidelity),
    ]);

    // Unpinned narrow request: the narrow specialist, exactly.
    let requested = ShardKey::for_request(RewardKind::ExpectedFidelity, None, 3);
    let routed = registry.route(requested).unwrap();
    let (shard, level) = (routed.key, routed.level);
    assert_eq!(shard, narrow_key);
    assert_eq!(level, RouteLevel::Exact);

    // IonQ-pinned narrow request: no (ionq, narrow) shard, so the
    // band-wildcard ionq specialist answers.
    let requested = ShardKey::for_request(
        RewardKind::ExpectedFidelity,
        Some(qrc_device::DeviceId::IonqHarmony),
        3,
    );
    let routed = registry.route(requested).unwrap();
    let (shard, level) = (routed.key, routed.level);
    assert_eq!(shard, ionq_key);
    assert_eq!(level, RouteLevel::BandWildcard);

    // IBM-pinned narrow request: no ibm shard at all → the
    // device-wildcard narrow specialist.
    let requested = ShardKey::for_request(
        RewardKind::ExpectedFidelity,
        Some(qrc_device::DeviceId::IbmqMontreal),
        3,
    );
    let routed = registry.route(requested).unwrap();
    let (shard, level) = (routed.key, routed.level);
    assert_eq!(shard, narrow_key);
    assert_eq!(level, RouteLevel::DeviceWildcard);

    // Medium width, unpinned: only the objective-only wildcard covers.
    let requested = ShardKey::for_request(RewardKind::ExpectedFidelity, None, 6);
    let routed = registry.route(requested).unwrap();
    let (shard, level) = (routed.key, routed.level);
    assert_eq!(shard, ShardKey::wildcard(RewardKind::ExpectedFidelity));
    assert_eq!(level, RouteLevel::ObjectiveOnly);

    // An objective with no shard resolves nowhere.
    let requested = ShardKey::for_request(RewardKind::CriticalDepth, None, 3);
    assert!(registry.route(requested).is_none());
}

#[test]
fn metrics_counters_partition_requests() {
    let service = CompilationService::with_registry(
        ModelRegistry::from_models(tiny_models()),
        &quiet_config(),
    );
    let good = format!(
        r#"{{"id":"inv","qasm":{}}}"#,
        serde_json::to_string(&serde_json::Value::from(bell_qasm()))
    );
    // Mixed traffic: parse errors, invalid qasm, a miss, duplicates
    // (coalesced), and — on a second pass — cache hits.
    let lines: Vec<String> = vec![
        "garbage".into(),
        good.clone(),
        good.clone(),
        r#"{"qasm":"not qasm"}"#.into(),
        good.clone(),
    ];
    service.handle_lines(&lines);
    service.handle_lines(&lines);
    // Plus two back-pressure rejections from the front end.
    service.record_rejected();
    service.record_rejected();

    let snap = service.metrics();
    assert_eq!(snap.requests, 10);
    assert_eq!(
        snap.requests,
        snap.errors + snap.hit_responses + snap.miss_responses + snap.coalesced_responses,
        "every request is exactly one of error/hit/miss/coalesced: {snap:?}"
    );
    assert_eq!(snap.errors, 4);
    assert_eq!(snap.miss_responses, 1);
    assert_eq!(snap.coalesced_responses, 2);
    assert_eq!(snap.hit_responses, 3);
    assert_eq!(snap.rejected, 2, "rejections counted apart from errors");
}

#[test]
fn width_limit_rejects_at_admission() {
    let service = CompilationService::with_registry(
        ModelRegistry::from_models(tiny_models()),
        &ServiceConfig {
            max_circuit_qubits: 4,
            ..quiet_config()
        },
    );
    let wide = qrc_circuit::qasm::to_qasm(&BenchmarkFamily::Ghz.generate(6));
    let responses = service.handle_batch(&[ServeRequest::new(wide)]);
    let err = responses[0].result.as_ref().unwrap_err();
    assert!(err.contains("exceeding the service limit of 4"), "{err}");

    let narrow = qrc_circuit::qasm::to_qasm(&BenchmarkFamily::Ghz.generate(3));
    let responses = service.handle_batch(&[ServeRequest::new(narrow)]);
    assert!(responses[0].result.is_ok());
}

#[test]
fn oversized_lines_rejected_before_parsing() {
    let service = CompilationService::with_registry(
        ModelRegistry::from_models(tiny_models()),
        &ServiceConfig {
            max_request_bytes: 64,
            ..quiet_config()
        },
    );
    let long = format!(r#"{{"qasm":"{}"}}"#, "x".repeat(200));
    let replies = service.handle_lines(&[long]);
    let parsed = serde_json::from_str(&replies[0]).unwrap();
    assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(false));
    assert!(parsed
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("exceeding the service limit"));
}

#[test]
fn ndjson_protocol_end_to_end() {
    let service = CompilationService::with_registry(
        ModelRegistry::from_models(tiny_models()),
        &quiet_config(),
    );
    let line = format!(
        r#"{{"id":"bell-1","qasm":{},"objective":"fidelity"}}"#,
        serde_json::to_string(&serde_json::Value::from(bell_qasm()))
    );
    let reply = service.handle_line(&line);
    let parsed = serde_json::from_str(&reply).unwrap();
    assert_eq!(parsed.get("id").unwrap().as_str(), Some("bell-1"));
    assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(parsed.get("cache").unwrap().as_str(), Some("miss"));
    assert!(parsed.get("micros").unwrap().as_u64().is_some());
    let reward = parsed.get("reward").unwrap().as_f64().unwrap();
    assert!((0.0..=1.0).contains(&reward));
    // The compiled program must itself parse as QASM.
    let compiled = parsed.get("qasm").unwrap().as_str().unwrap();
    assert!(qrc_circuit::qasm::from_qasm(compiled).is_ok());

    // Same request again: served from cache.
    let reply = service.handle_line(&line);
    let parsed = serde_json::from_str(&reply).unwrap();
    assert_eq!(parsed.get("cache").unwrap().as_str(), Some("hit"));

    // Errors are NDJSON too, never panics.
    let reply = service.handle_line("{broken json");
    let parsed = serde_json::from_str(&reply).unwrap();
    assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(false));
    let reply = service.handle_line(r#"{"qasm":"not qasm at all"}"#);
    let parsed = serde_json::from_str(&reply).unwrap();
    assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(false));
    assert!(parsed
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("invalid qasm"));

    let metrics = service.metrics();
    assert_eq!(metrics.requests, 4);
    assert_eq!(metrics.errors, 2);
    assert_eq!(metrics.cache.hits, 1);
    assert!(metrics.cache.hit_rate() > 0.0);
}

#[test]
fn handle_lines_preserves_order_with_mixed_validity() {
    let service = CompilationService::with_registry(
        ModelRegistry::from_models(tiny_models()),
        &quiet_config(),
    );
    let good = format!(
        r#"{{"id":"ok-1","qasm":{}}}"#,
        serde_json::to_string(&serde_json::Value::from(bell_qasm()))
    );
    let lines = vec!["nonsense".to_string(), good.clone(), "{}".to_string(), good];
    let replies = service.handle_lines(&lines);
    assert_eq!(replies.len(), 4);
    let oks: Vec<bool> = replies
        .iter()
        .map(|r| {
            serde_json::from_str(r)
                .unwrap()
                .get("ok")
                .unwrap()
                .as_bool()
                .unwrap()
        })
        .collect();
    assert_eq!(oks, vec![false, true, false, true]);
    // The two good requests are identical: one miss, one coalesced.
    let statuses: Vec<String> = [1usize, 3]
        .iter()
        .map(|&i| {
            serde_json::from_str(&replies[i])
                .unwrap()
                .get("cache")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string()
        })
        .collect();
    assert_eq!(statuses, vec!["miss".to_string(), "coalesced".to_string()]);
}

#[test]
fn device_pin_forces_the_target() {
    let service = CompilationService::with_registry(
        ModelRegistry::from_models(tiny_models()),
        &quiet_config(),
    );
    let mut request = ServeRequest::new(bell_qasm());
    request.device_pin = Some(qrc_device::DeviceId::IonqHarmony);
    let responses = service.handle_batch(std::slice::from_ref(&request));
    let (result, _) = responses[0].result.as_ref().unwrap();
    assert_eq!(result.device, Some(qrc_device::DeviceId::IonqHarmony));
    // The action trace starts with the forced selections.
    assert_eq!(result.actions[0], "platform:ionq");
    assert_eq!(result.actions[1], "device:ionq_harmony");

    // An infeasible pin (circuit wider than the device) is an error
    // response, not a panic.
    let wide = BenchmarkFamily::Ghz.generate(12);
    let mut request = ServeRequest::new(qrc_circuit::qasm::to_qasm(&wide));
    request.device_pin = Some(qrc_device::DeviceId::OqcLucy); // 8 qubits
    let responses = service.handle_batch(std::slice::from_ref(&request));
    let err = responses[0].result.as_ref().unwrap_err();
    assert!(err.contains("oqc_lucy"), "{err}");

    // Pinned and unpinned results for the same circuit are cached
    // under different keys.
    assert!(service.cache_len() >= 1);
}
