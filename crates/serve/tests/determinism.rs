//! The serving determinism contract: batched/parallel execution must
//! produce responses byte-identical to serial execution (latency
//! metadata aside), and identical traffic must produce identical
//! responses regardless of batch boundaries.

use qrc_benchgen::BenchmarkFamily;
use qrc_predictor::{train, PredictorConfig, RewardKind};
use qrc_rl::PpoConfig;
use qrc_serve::scheduler::parallel_matches_serial;
use qrc_serve::{synthetic_mix, CompilationService, ModelRegistry, ServiceConfig, TrafficConfig};

/// A registry with one quickly-trained model per objective.
fn tiny_registry() -> ModelRegistry {
    let suite = vec![
        BenchmarkFamily::Ghz.generate(3),
        BenchmarkFamily::Dj.generate(3),
        BenchmarkFamily::WState.generate(3),
    ];
    let models = RewardKind::ALL
        .into_iter()
        .map(|reward| {
            let config = PredictorConfig {
                reward,
                total_timesteps: 1200,
                ppo: PpoConfig {
                    steps_per_update: 128,
                    minibatch_size: 32,
                    epochs: 4,
                    hidden: vec![24],
                    learning_rate: 1e-3,
                    ..PpoConfig::default()
                },
                seed: 5,
                step_penalty: 0.005,
            };
            train(suite.clone(), &config)
        })
        .collect();
    ModelRegistry::from_models(models)
}

fn service_config(parallel: bool) -> ServiceConfig {
    ServiceConfig {
        parallel,
        verbose: false,
        ..ServiceConfig::default()
    }
}

#[test]
fn batched_execution_is_byte_identical_to_serial() {
    let registry = tiny_registry();
    let traffic = synthetic_mix(&TrafficConfig {
        requests: 48,
        max_qubits: 4,
        ..TrafficConfig::default()
    });
    assert!(
        parallel_matches_serial(&registry, 3, &traffic, 1024, 8),
        "parallel batch diverged from serial execution"
    );
}

#[test]
fn batch_boundaries_do_not_change_results() {
    let traffic = synthetic_mix(&TrafficConfig {
        requests: 30,
        max_qubits: 4,
        ..TrafficConfig::default()
    });

    // One service swallows the whole stream in a single batch; the
    // other sees it in batches of 7. The cache state differs along the
    // way, so `cache` statuses may differ — but the *payloads* must
    // not.
    let whole = CompilationService::with_registry(tiny_registry(), &service_config(true));
    let chunked = CompilationService::with_registry(tiny_registry(), &service_config(false));

    let whole_responses = whole.handle_batch(&traffic);
    let mut chunked_responses = Vec::new();
    for chunk in traffic.chunks(7) {
        chunked_responses.extend(chunked.handle_batch(chunk));
    }
    assert_eq!(whole_responses.len(), chunked_responses.len());
    for (a, b) in whole_responses.iter().zip(chunked_responses.iter()) {
        match (&a.result, &b.result) {
            (Ok((ra, _)), Ok((rb, _))) => {
                assert_eq!(ra.qasm, rb.qasm);
                assert_eq!(ra.actions, rb.actions);
                assert_eq!(ra.device, rb.device);
                assert_eq!(ra.reward.to_bits(), rb.reward.to_bits());
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb),
            other => panic!("ok/err divergence: {other:?}"),
        }
    }
}

#[test]
fn batched_inference_is_byte_identical_to_serial_inference() {
    let traffic = synthetic_mix(&TrafficConfig {
        requests: 30,
        max_qubits: 4,
        ..TrafficConfig::default()
    });

    // Cold caches on both sides, so every unique job runs the policy:
    // this compares the single-row forward path against the batched
    // matrix-matrix path, not the cache.
    let serial = CompilationService::with_registry(
        tiny_registry(),
        &ServiceConfig {
            batch_inference: false,
            ..service_config(false)
        },
    );
    let batched = CompilationService::with_registry(tiny_registry(), &service_config(false));

    let a = serial.handle_batch(&traffic);
    let b = batched.handle_batch(&traffic);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(
            x.body_value(),
            y.body_value(),
            "batched inference diverged from serial inference"
        );
    }

    // Each side attributes every miss to its own inference mode.
    let sm = serial.metrics();
    let bm = batched.metrics();
    assert!(sm.misses_f64_serial > 0);
    assert_eq!(sm.misses_f64_batched + sm.misses_int8_batched, 0);
    assert!(bm.misses_f64_batched > 0);
    assert_eq!(bm.misses_f64_serial + bm.misses_int8_batched, 0);
}

#[test]
fn registry_backed_builtins_match_enum_era_payloads() {
    // The pre-refactor enum path hard-wired the five paper devices with
    // seed tags 1..=5. The registry must reproduce that contract even
    // while unrelated runtime devices are being registered: a seeded
    // traffic mix compiled before and after extra registrations must be
    // byte-identical, and the built-in seed tags must not move.
    use qrc_device::{DeviceId, DeviceRegistry, DeviceSource, DeviceSpec, Platform, TopologySpec};

    let traffic = synthetic_mix(&TrafficConfig {
        requests: 36,
        max_qubits: 4,
        pin_fraction: 0.5,
        ..TrafficConfig::default()
    });

    let baseline = CompilationService::with_registry(tiny_registry(), &service_config(false));
    let before = baseline.handle_batch(&traffic);

    for (i, id) in DeviceId::ALL.iter().enumerate() {
        assert_eq!(DeviceRegistry::seed_tag(*id), 1 + i as u64);
    }
    DeviceRegistry::register(
        DeviceSpec::synthetic(
            "determinism_dyn_ring_8",
            Platform::Oqc,
            TopologySpec::Ring { qubits: 8 },
        ),
        DeviceSource::Runtime,
    )
    .expect("register a runtime device");

    let after_service = CompilationService::with_registry(tiny_registry(), &service_config(false));
    let after = after_service.handle_batch(&traffic);

    assert_eq!(before.len(), after.len());
    for (a, b) in before.iter().zip(after.iter()) {
        assert_eq!(
            a.payload_value(),
            b.payload_value(),
            "registering a runtime device perturbed a built-in payload"
        );
    }
    for (i, id) in DeviceId::ALL.iter().enumerate() {
        assert_eq!(
            DeviceRegistry::seed_tag(*id),
            1 + i as u64,
            "built-in seed tag drifted after a runtime registration"
        );
    }
}

#[test]
fn duplicate_requests_in_one_batch_coalesce() {
    let service = CompilationService::with_registry(tiny_registry(), &service_config(true));
    let mut qc = qrc_circuit::QuantumCircuit::new(3);
    qc.h(0).cx(0, 1).cx(1, 2).measure_all();
    let text = qrc_circuit::qasm::to_qasm(&qc);
    let requests: Vec<_> = (0..6)
        .map(|i| {
            let mut r = qrc_serve::ServeRequest::new(text.clone());
            r.id = Some(format!("dup-{i}"));
            r
        })
        .collect();
    let responses = service.handle_batch(&requests);
    let statuses: Vec<&str> = responses
        .iter()
        .map(|r| r.result.as_ref().unwrap().1.name())
        .collect();
    assert_eq!(statuses[0], "miss");
    assert!(
        statuses[1..].iter().all(|s| *s == "coalesced"),
        "{statuses:?}"
    );
    // All six carry the same payload pointer-equal result.
    let first = &responses[0].result.as_ref().unwrap().0;
    for r in &responses[1..] {
        assert!(std::sync::Arc::ptr_eq(first, &r.result.as_ref().unwrap().0));
    }

    // A second batch with the same content is served from cache.
    let again = service.handle_batch(&requests[..1]);
    assert_eq!(again[0].result.as_ref().unwrap().1.name(), "hit");
}
